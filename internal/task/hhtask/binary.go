// Binary state codec for the heavy-hitter aggregator: the accumulator
// layout (stateVersionSums) with varint-packed support sums. The
// leading version byte is checked before the payload is read; the
// legacy report-list layout was never given a binary form, so only
// the accumulator version is accepted. Both codecs feed the same
// applyState validation, making the two encodings interchangeable.
package hhtask

import (
	"fmt"

	"repro/internal/binenc"
)

// MarshalStateBinary implements task.BinaryStater.
func (a *Aggregator) MarshalStateBinary() ([]byte, error) {
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(stateVersionSums)
	w.String(MechanismPEM)
	w.Float64(a.params.Epsilon)
	w.Varint(int64(a.params.Bits))
	w.Varint(int64(a.params.Levels))
	w.Varint(int64(a.params.K))
	w.Varint(int64(a.params.CandidateBudget))
	w.Varint(int64(a.round))
	if a.done {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
	w.Varint(int64(a.prevUsers))
	writePrefixes(w, a.survivors)
	w.Varint(int64(a.roundReports))
	w.Int64s(a.sums)
	writePrefixes(w, a.hits)
	return append([]byte(nil), w.Bytes()...), nil
}

// UnmarshalStateBinary implements task.BinaryStater; errors leave the
// receiver unchanged.
func (a *Aggregator) UnmarshalStateBinary(data []byte) error {
	r := binenc.NewReader(data)
	version := int(r.Byte())
	if err := r.Err(); err != nil {
		return fmt.Errorf("hhtask: bad state: %w", err)
	}
	if version != stateVersionSums {
		return fmt.Errorf("hhtask: binary state version %d not supported (have %d)", version, stateVersionSums)
	}
	var st state
	st.V = version
	st.Mechanism = r.String()
	st.Epsilon = r.Float64()
	st.Bits = int(r.Varint())
	st.Levels = int(r.Varint())
	st.K = int(r.Varint())
	st.Budget = int(r.Varint())
	st.Round = int(r.Varint())
	st.Done = r.Byte() != 0
	st.PrevUsers = int(r.Varint())
	st.Survivors = readPrefixes(r)
	st.RoundReports = int(r.Varint())
	st.Sums = r.Int64s()
	st.Hits = readPrefixes(r)
	if err := r.Done(); err != nil {
		return fmt.Errorf("hhtask: bad state: %w", err)
	}
	return a.applyState(st)
}

// writePrefixes appends a length-prefixed prefix list: each entry is
// the raw 64-bit prefix value plus its estimated count.
func writePrefixes(w *binenc.Writer, ps []Prefix) {
	w.Uvarint(uint64(len(ps)))
	for _, p := range ps {
		w.Uint64(p.Value)
		w.Float64(p.Count)
	}
}

// readPrefixes reads a list written by writePrefixes, guarding the
// length prefix against the bytes remaining (16 per entry).
func readPrefixes(r *binenc.Reader) []Prefix {
	n := r.Length(16)
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]Prefix, n)
	for i := range out {
		out[i].Value = r.Uint64()
		out[i].Count = r.Float64()
	}
	if r.Err() != nil {
		return nil
	}
	return out
}
