package hhtask

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/url"
	"testing"

	"repro/internal/heavyhitters"
	"repro/internal/ldprand"
	"repro/internal/task"
)

func cfg() task.Config {
	return task.Config{Task: task.TypeHH, Mechanism: MechanismPEM, Epsilon: 2, Bits: 8, Levels: 4, K: 3}
}

// driveRound reports n values into a for the aggregator's current
// round, each value drawn from values round-robin.
func driveRound(t *testing.T, a task.Aggregator, c *Client, values []uint64, n int) {
	t.Helper()
	p := a.(task.Phased)
	for i := 0; i < n; i++ {
		raw, err := c.Report(values[i%len(values)], p.Round())
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Add(raw); err != nil {
			t.Fatal(err)
		}
	}
}

// TestProtocolRecoversPlantedHitters runs the full multi-round
// protocol against a skewed population and checks the planted heavy
// hitters dominate the final hits.
func TestProtocolRecoversPlantedHitters(t *testing.T) {
	a, err := task.New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	p := a.(task.Phased)
	client, err := NewClient(2, 8, 4, ldprand.NewSplitMix64(7))
	if err != nil {
		t.Fatal(err)
	}
	// 70% of users hold one of two planted values; the rest spread.
	src := ldprand.NewSplitMix64(8)
	for round := 0; round < 4; round++ {
		if p.Done() {
			t.Fatalf("done before round %d", round)
		}
		for i := 0; i < 900; i++ {
			v := uint64(ldprand.Intn(src, 256))
			switch ldprand.Intn(src, 10) {
			case 0, 1, 2, 3:
				v = 0xAB
			case 4, 5, 6:
				v = 0x17
			}
			raw, err := client.Report(v, round)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Add(raw); err != nil {
				t.Fatal(err)
			}
		}
		if got := p.RoundReports(); got != 900 {
			t.Fatalf("round %d reports %d want 900", round, got)
		}
		if err := p.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Done() || p.Round() != 4 {
		t.Fatalf("done=%v round=%d after final advance", p.Done(), p.Round())
	}
	if a.Collected() != 3600 {
		t.Fatalf("collected %d want 3600", a.Collected())
	}
	raw, err := a.Estimate(url.Values{"top": {"2"}})
	if err != nil {
		t.Fatal(err)
	}
	var res EstimateResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Phase != PhaseDone || len(res.Hits) != 2 {
		t.Fatalf("estimate %+v", res)
	}
	found := map[uint64]bool{}
	for _, h := range res.Hits {
		found[h.Value] = true
	}
	if !found[0xAB] || !found[0x17] {
		t.Fatalf("planted hitters not recovered: %+v", res.Hits)
	}
	// Advancing a done protocol is an error; further reports are
	// wrong-round.
	if err := p.Advance(); err == nil {
		t.Fatal("advance past done succeeded")
	}
	rep, _ := client.Report(1, 3)
	if err := a.Add(rep); !errors.Is(err, task.ErrWrongRound) {
		t.Fatalf("post-done add error %v, want ErrWrongRound", err)
	}
}

// TestWrongRoundRejected pins the round-tag contract: stale and future
// rounds bounce with task.ErrWrongRound and are not accumulated.
func TestWrongRoundRejected(t *testing.T) {
	a, err := task.New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	p := a.(task.Phased)
	client, err := NewClient(2, 8, 4, ldprand.NewSplitMix64(9))
	if err != nil {
		t.Fatal(err)
	}
	driveRound(t, a, client, []uint64{5}, 10)
	if err := p.Advance(); err != nil {
		t.Fatal(err)
	}
	for _, round := range []int{0, 2, 3} {
		raw, err := client.Report(5, round)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Add(raw); !errors.Is(err, task.ErrWrongRound) {
			t.Fatalf("round %d against current 1: error %v, want ErrWrongRound", round, err)
		}
	}
	if a.Collected() != 10 {
		t.Fatalf("wrong-round reports were accumulated: collected %d", a.Collected())
	}
	// A mechanism mismatch is a plain validation error, not wrong-round.
	if err := a.Add(json.RawMessage(`{"mechanism":"OLH","value":3}`)); err == nil || errors.Is(err, task.ErrWrongRound) {
		t.Fatalf("foreign envelope error %v", err)
	}
}

// TestMergeMatchesSingleAggregator pins the sharding soundness
// property: reports split across aggregators and merged advance to
// exactly the frontier a single aggregator reaches.
func TestMergeMatchesSingleAggregator(t *testing.T) {
	single, _ := task.New(cfg())
	a, _ := task.New(cfg())
	b, _ := task.New(cfg())
	client, err := NewClient(2, 8, 4, ldprand.NewSplitMix64(11))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 300; i++ {
			raw, err := client.Report(uint64(i%7)*31, round)
			if err != nil {
				t.Fatal(err)
			}
			if err := single.Add(raw); err != nil {
				t.Fatal(err)
			}
			dst := a
			if i%2 == 1 {
				dst = b
			}
			if err := dst.Add(raw); err != nil {
				t.Fatal(err)
			}
		}
		if err := single.(task.Phased).Advance(); err != nil {
			t.Fatal(err)
		}
		// Merge the split pair into a fresh aggregator, advance it, and
		// redistribute — exactly the sharded round boundary.
		merged, _ := task.New(cfg())
		if err := merged.Merge(a); err != nil {
			t.Fatal(err)
		}
		if err := merged.Merge(b); err != nil {
			t.Fatal(err)
		}
		if err := merged.(task.Phased).Advance(); err != nil {
			t.Fatal(err)
		}
		ms, err := merged.MarshalState()
		if err != nil {
			t.Fatal(err)
		}
		if err := a.UnmarshalState(ms); err != nil {
			t.Fatal(err)
		}
		if err := b.(task.Phased).AdoptPhase(merged); err != nil {
			t.Fatal(err)
		}
		wantF, err := single.(task.Phased).Frontier()
		if err != nil {
			t.Fatal(err)
		}
		gotF, err := merged.(task.Phased).Frontier()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantF, gotF) {
			t.Fatalf("round %d frontier diverged:\n%s\n%s", round, wantF, gotF)
		}
	}
	if a.Collected()+b.Collected() != single.Collected() {
		t.Fatalf("split collected %d+%d, single %d", a.Collected(), b.Collected(), single.Collected())
	}
}

// TestMergeAcrossRoundsRefused pins that desynced aggregators refuse
// to merge rather than pooling reports across rounds.
func TestMergeAcrossRoundsRefused(t *testing.T) {
	a, _ := task.New(cfg())
	b, _ := task.New(cfg())
	client, err := NewClient(2, 8, 4, ldprand.NewSplitMix64(13))
	if err != nil {
		t.Fatal(err)
	}
	driveRound(t, a, client, []uint64{1}, 5)
	driveRound(t, b, client, []uint64{1}, 5)
	if err := a.(task.Phased).Advance(); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); !errors.Is(err, task.ErrWrongRound) {
		t.Fatalf("cross-round merge error %v, want ErrWrongRound", err)
	}
}

// TestStateRoundTripsMidRound pins the checkpoint contract at the
// adapter level: a mid-round state restores bit-identically (frontier,
// estimate, counters) and the restored protocol finishes correctly.
func TestStateRoundTripsMidRound(t *testing.T) {
	a, _ := task.New(cfg())
	client, err := NewClient(2, 8, 4, ldprand.NewSplitMix64(17))
	if err != nil {
		t.Fatal(err)
	}
	driveRound(t, a, client, []uint64{0xAB, 0x17, 0x30}, 200)
	if err := a.(task.Phased).Advance(); err != nil {
		t.Fatal(err)
	}
	driveRound(t, a, client, []uint64{0xAB, 0x17, 0x30}, 120) // round 1, mid-flight
	blob, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	b, _ := task.New(cfg())
	if err := b.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	fa, _ := a.(task.Phased).Frontier()
	fb, _ := b.(task.Phased).Frontier()
	if !bytes.Equal(fa, fb) {
		t.Fatalf("frontier changed across state round trip:\n%s\n%s", fa, fb)
	}
	ea, _ := a.Estimate(nil)
	eb, _ := b.Estimate(nil)
	if !bytes.Equal(ea, eb) {
		t.Fatalf("estimate changed across state round trip:\n%s\n%s", ea, eb)
	}
	if b.Collected() != a.Collected() || b.(task.Phased).RoundReports() != 120 {
		t.Fatalf("restored counters: collected %d round %d", b.Collected(), b.(task.Phased).RoundReports())
	}

	// A state with different parameters must be refused unchanged.
	other, _ := task.New(task.Config{Task: task.TypeHH, Epsilon: 2, Bits: 8, Levels: 2, K: 3})
	if err := other.UnmarshalState(blob); err == nil {
		t.Fatal("state restored across mismatched parameters")
	}

	// Corrupt phase invariants are refused: done must track the final
	// round exactly, and a completed state carries no reports.
	var st map[string]any
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	for _, corrupt := range []func(map[string]any){
		func(m map[string]any) { m["round"] = 4.0 },                  // round==levels but done absent
		func(m map[string]any) { m["done"] = true },                  // done mid-protocol
		func(m map[string]any) { m["round"], m["done"] = 4.0, true }, // done with in-flight reports
	} {
		m := map[string]any{}
		for k, v := range st {
			m[k] = v
		}
		corrupt(m)
		forged, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		fresh, _ := task.New(cfg())
		if err := fresh.UnmarshalState(forged); err == nil {
			t.Fatalf("corrupt state %s restored without error", forged[:80])
		}
	}
}

// TestConfigValidation pins creation-time rejection of malformed and
// explosive configurations.
func TestConfigValidation(t *testing.T) {
	bad := []task.Config{
		{Task: task.TypeHH, Epsilon: 0, Bits: 8, Levels: 4, K: 3},
		{Task: task.TypeHH, Epsilon: 1, Bits: 0, Levels: 1, K: 3},
		{Task: task.TypeHH, Epsilon: 1, Bits: 8, Levels: 9, K: 3},
		{Task: task.TypeHH, Epsilon: 1, Bits: 8, Levels: 4, K: 0},
		{Task: task.TypeHH, Mechanism: "SFP", Epsilon: 1, Bits: 8, Levels: 4, K: 3},
		// Candidate blow-up: round 0 would enumerate 2^30 prefixes.
		{Task: task.TypeHH, Epsilon: 1, Bits: 60, Levels: 2, K: 3},
		// Shift overflow: 1<<63 wraps negative, and an unguarded
		// comparison would accept this and panic at the first Advance.
		{Task: task.TypeHH, Epsilon: 1, Bits: 63, Levels: 1, K: 1},
	}
	for _, c := range bad {
		if _, err := task.New(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	// An empty mechanism means PEM.
	a, err := task.New(task.Config{Task: task.TypeHH, Epsilon: 1, Bits: 8, Levels: 4, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.ReportBits() <= 64 {
		t.Fatalf("report bits %d", a.ReportBits())
	}
}

// TestServedMatchesBatchPEM cross-validates the served protocol
// against FindPEM: with the same per-round populations the served
// variant should recover the same dominant value.
func TestServedMatchesBatchPEM(t *testing.T) {
	values := make([]uint64, 2000)
	src := ldprand.NewSplitMix64(19)
	for i := range values {
		if i%3 == 0 {
			values[i] = 0xC4
		} else {
			values[i] = uint64(ldprand.Intn(src, 256))
		}
	}
	batch, err := heavyhitters.FindPEM(heavyhitters.PEMParams{Epsilon: 2, Bits: 8, Levels: 4, K: 3}, values, ldprand.NewSplitMix64(20))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := task.New(cfg())
	client, err := NewClient(2, 8, 4, ldprand.NewSplitMix64(21))
	if err != nil {
		t.Fatal(err)
	}
	p := a.(task.Phased)
	for round := 0; round < 4; round++ {
		for _, v := range values[round*500 : (round+1)*500] {
			raw, err := client.Report(v, round)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Add(raw); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := a.Estimate(url.Values{"top": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	var res EstimateResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(batch) == 0 || len(res.Hits) == 0 {
		t.Fatalf("batch %v served %v", batch, res.Hits)
	}
	if batch[0].Value != 0xC4 || res.Hits[0].Value != 0xC4 {
		t.Fatalf("dominant value: batch %d served %d want 0xC4", batch[0].Value, res.Hits[0].Value)
	}
	// The served scale-up lands in the same ballpark as the batch run
	// (both estimate ~667 holders from a quarter of the population).
	truth := 0.0
	for _, v := range values {
		if v == 0xC4 {
			truth++
		}
	}
	for _, got := range []float64{batch[0].Count, res.Hits[0].Count} {
		if got < truth*0.5 || got > truth*1.5 {
			t.Fatalf("count %v too far from truth %v", got, truth)
		}
	}
}

// TestFrontierShape pins the published wire schema round over round.
func TestFrontierShape(t *testing.T) {
	a, _ := task.New(cfg())
	p := a.(task.Phased)
	raw, err := p.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	var f Frontier
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	if f.Round != 0 || f.Done || f.PrefixLen != 2 || f.Bits != 8 || f.Levels != 4 || len(f.Prefixes) != 0 {
		t.Fatalf("round-0 frontier %+v", f)
	}
	client, err := NewClient(f.Epsilon, f.Bits, f.Levels, ldprand.NewSplitMix64(23))
	if err != nil {
		t.Fatal(err)
	}
	driveRound(t, a, client, []uint64{0xF0}, 50)
	if err := p.Advance(); err != nil {
		t.Fatal(err)
	}
	raw, _ = p.Frontier()
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	if f.Round != 1 || f.PrefixLen != 4 || f.PrefixBits != 2 || len(f.Prefixes) != 4 {
		t.Fatalf("round-1 frontier %+v", f)
	}
	// 2·K=6 budget over 4 round-0 candidates keeps all 4; the reported
	// prefixes must be 2-bit values.
	for _, s := range f.Prefixes {
		if s.Value > 3 {
			t.Fatalf("round-1 prefix %d not a 2-bit value", s.Value)
		}
	}
}

// TestAdvanceEmptyRound pins that an empty round advances instead of
// wedging the protocol.
func TestAdvanceEmptyRound(t *testing.T) {
	a, _ := task.New(cfg())
	p := a.(task.Phased)
	for i := 0; i < 4; i++ {
		if err := p.Advance(); err != nil {
			t.Fatalf("empty advance %d: %v", i, err)
		}
	}
	if !p.Done() {
		t.Fatal("not done after all rounds")
	}
	raw, err := a.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	var res EstimateResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Fatalf("empty protocol produced hits %+v", res.Hits)
	}
}

// TestEstimateTopValidation pins the ?top= query contract.
func TestEstimateTopValidation(t *testing.T) {
	a, _ := task.New(cfg())
	for _, bad := range []string{"0", "-1", "x"} {
		if _, err := a.Estimate(url.Values{"top": {bad}}); err == nil {
			t.Errorf("top=%s accepted", bad)
		}
	}
}
