package hhtask

// Native fuzzing for UnmarshalState: checkpoint blobs arrive from
// disk, where a crash or operator edit can leave anything, and the
// envelope contract says restore either succeeds onto a consistent
// aggregator or refuses loudly — never panics, never half-applies.
// Seeded with the committed legacy fixture and a current-format
// snapshot, so mutation explores both accepted layouts.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/task"
)

func FuzzUnmarshalState(f *testing.F) {
	legacy, err := os.ReadFile(filepath.Join("testdata", "state_legacy_reports.json"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(legacy)

	live, err := task.New(cfg())
	if err != nil {
		f.Fatal(err)
	}
	current, err := live.MarshalState()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(current)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"v":99,"mechanism":"pem"}`))
	f.Add([]byte(`{"v":2,"mechanism":"pem","epsilon":2,"bits":8,"levels":4,"k":3,"round":1,"prev_users":10,"sums":[1,2]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := task.New(cfg())
		if err != nil {
			t.Fatal(err)
		}
		if err := a.UnmarshalState(data); err != nil {
			return // refused loudly: the acceptable failure mode
		}
		// Accepted states must leave a fully consistent aggregator:
		// marshal succeeds and the result restores onto a fresh
		// aggregator reproducing the same bytes — the checkpoint
		// cycle's fixed point.
		out, err := a.MarshalState()
		if err != nil {
			t.Fatalf("accepted state does not re-marshal: %v", err)
		}
		b, err := task.New(cfg())
		if err != nil {
			t.Fatal(err)
		}
		if err := b.UnmarshalState(out); err != nil {
			t.Fatalf("marshaled state of an accepted restore is refused: %v", err)
		}
		out2, err := b.MarshalState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("restore not a fixed point:\n%s\n%s", out, out2)
		}
	})
}
