// Package hhtask adapts the prefix-extending heavy-hitter method
// (internal/heavyhitters' PEM over a local-hashing oracle) to the
// task-generic aggregation interface as the first *phased* task: the
// flagship LDP problem of discovering frequent items from domains far
// too large to enumerate (RAPPOR's unknown dictionary, Apple's new
// words) served as an interactive multi-round protocol instead of a
// one-shot batch.
//
// The protocol runs one round per prefix level. The server publishes a
// frontier — the current round, the prefix length to report, and the
// prefixes that survived the previous round — and each participating
// client privatizes its value's prefix at that length with OLH and
// reports it tagged with the round. Advance closes a round: the
// round's reports score the children of the surviving prefixes, the
// top candidates survive into the next round, and after the final
// round the survivors (scaled to the full population) are the
// discovered heavy hitters, served through ?top=k estimates.
//
// Reports from a stale or future round are rejected with
// task.ErrWrongRound so a lagging client refetches the frontier; this
// is what keeps each user's single ε-budget report inside exactly one
// round. The adapter deliberately does not implement task.Preparer:
// round validation reads the mutable round counter, which the Preparer
// contract forbids touching outside the shard lock.
package hhtask

import (
	"encoding/json"
	"fmt"
	"net/url"
	"sort"
	"strconv"

	"repro/internal/heavyhitters"
	"repro/internal/ldprand"
	"repro/internal/task"
)

func init() {
	task.Register(task.TypeHH, New)
}

// MechanismPEM is the prefix extending method, the hh family's first
// (and currently only) mechanism.
const MechanismPEM = "PEM"

// Mechanisms lists the hh mechanisms in presentation order.
func Mechanisms() []string { return []string{MechanismPEM} }

// maxRoundCandidates bounds the candidate set scored in any one round
// (survivor budget × per-round prefix growth). The cap turns a config
// like bits=60, levels=2 — whose first round would enumerate 2³⁰
// prefixes — into a creation error instead of an allocation storm at
// the first Advance.
const (
	maxRoundCandidatesLog2 = 20
	maxRoundCandidates     = 1 << maxRoundCandidatesLog2
)

// Phase names reported by estimates and /status.
const (
	PhaseCollecting = "collecting"
	PhaseDone       = "done"
)

// Envelope is the JSON wire format of one privatized hh report: the
// round it was privatized against plus the local-hashing report for
// the client's prefix at that round's length.
type Envelope struct {
	Mechanism string `json:"mechanism"`
	Round     int    `json:"round"`
	Seed      uint64 `json:"seed"`
	Bucket    int    `json:"bucket"`
}

// Prefix is one surviving prefix (or, after the final round, one
// discovered heavy hitter) with its estimated count.
type Prefix struct {
	Value uint64  `json:"value"`
	Count float64 `json:"count"`
}

// Frontier is the hh task's published per-round state: everything a
// client needs to participate in the current round, and — once done —
// the protocol's results.
type Frontier struct {
	Mechanism string  `json:"mechanism"`
	Round     int     `json:"round"`
	Levels    int     `json:"levels"`
	Bits      int     `json:"bits"`
	Epsilon   float64 `json:"epsilon"`
	// PrefixLen is the prefix length (in bits) clients report this
	// round; 0 once the protocol is done.
	PrefixLen int  `json:"prefix_len"`
	Done      bool `json:"done"`
	// Prefixes are the survivors of the last completed round, each
	// PrefixBits long — the candidate parents this round extends.
	PrefixBits int      `json:"prefix_bits"`
	Prefixes   []Prefix `json:"prefixes,omitempty"`
	// Hits are the final discovered heavy hitters, population-scaled;
	// set only when Done.
	Hits []Prefix `json:"hits,omitempty"`
}

// params converts the flat task configuration into PEM parameters.
func params(cfg task.Config) (heavyhitters.PEMParams, error) {
	if cfg.Mechanism != "" && cfg.Mechanism != MechanismPEM {
		return heavyhitters.PEMParams{}, fmt.Errorf("hhtask: unknown mechanism %q (have %v)", cfg.Mechanism, Mechanisms())
	}
	p := heavyhitters.PEMParams{
		Epsilon:         cfg.Epsilon,
		Bits:            cfg.Bits,
		Levels:          cfg.Levels,
		K:               cfg.K,
		CandidateBudget: cfg.Budget,
	}
	if err := p.Validate(); err != nil {
		return heavyhitters.PEMParams{}, err
	}
	// Bound every round's candidate set up front: round 0 enumerates
	// 2^PrefixLen(0) prefixes, round r extends Budget() survivors by
	// the round's prefix growth. The shifted comparison (base against
	// the limit >> grow, with grow itself bounded first) never
	// overflows — grow can reach 63, where a direct 1<<grow would wrap
	// negative and wave the config through to a panic at Advance.
	prev := 0
	for lvl := 0; lvl < p.Levels; lvl++ {
		grow := p.PrefixLen(lvl) - prev
		base := 1
		if lvl > 0 {
			base = p.Budget()
		}
		if grow > maxRoundCandidatesLog2 || base > maxRoundCandidates>>uint(grow) {
			return heavyhitters.PEMParams{}, fmt.Errorf(
				"hhtask: round %d would score %d×2^%d candidates, above the limit %d (raise levels or lower budget)",
				lvl, base, grow, maxRoundCandidates)
		}
		prev = p.PrefixLen(lvl)
	}
	return p, nil
}

// Aggregator is the server half of the PEM protocol: a phased
// task.Aggregator that accumulates the current round's local-hashing
// reports and, at each Advance, prunes the prefix frontier.
//
// Round state is a fixed-size accumulator, not a report list: the
// candidate set is frozen when the round opens (it is a deterministic
// function of the round and the survivors, so every shard freezes the
// same one), and each accepted report folds its 0/1 support indicator
// per candidate into an integer sum vector. Per-round memory is
// O(budget · 2^grow) — bounded by maxRoundCandidates — regardless of
// how many reports the round absorbs, and because the sums are
// integer-valued the accumulator is bit-identical to the report list
// it replaced: merges are exact vector adds, debiasing happens once at
// Advance via EstimateFromSupport, and EstimateCounts over the
// equivalent list produces the same floats bit for bit.
type Aggregator struct {
	params heavyhitters.PEMParams
	mech   heavyhitters.LHMech

	round     int
	done      bool
	prevUsers int // reports absorbed by completed rounds
	// survivors are the prefixes that survived the last completed
	// round (PrefixLen(round-1) bits each); nil at round 0, when the
	// only parent is the empty prefix.
	survivors []Prefix
	// cands is the current round's frozen candidate set; nil once done.
	cands []uint64
	// sums[i] counts the current round's reports supporting cands[i].
	sums []int64
	// roundReports counts the current round's accepted reports (the n
	// the debiasing at Advance needs).
	roundReports int
	hits         []Prefix // final population-scaled results, once done
}

// New builds an hh task aggregator: Bits-long items discovered over
// Levels rounds, returning the top K (Budget survivors per round).
func New(cfg task.Config) (task.Aggregator, error) {
	p, err := params(cfg)
	if err != nil {
		return nil, err
	}
	a := &Aggregator{params: p, mech: heavyhitters.NewLHMech(p.Epsilon)}
	a.openRound()
	return a, nil
}

// Type returns "hh".
func (a *Aggregator) Type() string { return task.TypeHH }

// Add validates and folds one round-tagged envelope. Reports for any
// round but the current one — including any report once the protocol
// is done — are rejected wrapping task.ErrWrongRound.
func (a *Aggregator) Add(report json.RawMessage) error {
	var e Envelope
	if err := json.Unmarshal(report, &e); err != nil {
		return fmt.Errorf("hhtask: bad envelope: %w", err)
	}
	if e.Mechanism != MechanismPEM {
		return fmt.Errorf("hhtask: envelope mechanism %q does not match %q", e.Mechanism, MechanismPEM)
	}
	if a.done {
		return fmt.Errorf("hhtask: protocol completed all %d rounds: %w", a.params.Levels, task.ErrWrongRound)
	}
	if e.Round != a.round {
		return fmt.Errorf("hhtask: report for round %d, collection at round %d: %w", e.Round, a.round, task.ErrWrongRound)
	}
	if e.Bucket < 0 || e.Bucket >= a.mech.G() {
		return fmt.Errorf("hhtask: bucket %d out of range [0,%d)", e.Bucket, a.mech.G())
	}
	a.mech.FoldSupport(heavyhitters.LHReport{Seed: e.Seed, Bucket: e.Bucket}, a.cands, a.sums)
	a.roundReports++
	return nil
}

// AddBatch folds a batch of envelopes, skipping invalid ones.
func (a *Aggregator) AddBatch(reports []json.RawMessage) (int, error) {
	return task.AddAll(a, reports)
}

// Collected returns the total reports absorbed across all rounds.
func (a *Aggregator) Collected() int { return a.prevUsers + a.roundReports }

// ReportBits returns the per-report payload size: the 64-bit hash seed
// plus the bucket index.
func (a *Aggregator) ReportBits() int { return 64 + bitsFor(a.mech.G()) }

// bitsFor returns ceil(log2(n)) for n >= 1.
func bitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Reset restarts the protocol from round 0, discarding all reports,
// survivors and results.
func (a *Aggregator) Reset() {
	a.round, a.done, a.prevUsers = 0, false, 0
	a.survivors, a.hits = nil, nil
	a.openRound()
}

// Round returns the current round (task.Phased).
func (a *Aggregator) Round() int { return a.round }

// RoundReports returns the current round's report count (task.Phased).
func (a *Aggregator) RoundReports() int { return a.roundReports }

// Done reports whether all rounds have completed (task.Phased).
func (a *Aggregator) Done() bool { return a.done }

// prefixBits returns the length of the current survivors' prefixes.
func (a *Aggregator) prefixBits() int {
	if a.round == 0 {
		return 0
	}
	return a.params.PrefixLen(a.round - 1)
}

// candidatesFor returns the candidate set round `round` scores given
// the previous round's survivors: every extension of the surviving
// prefixes to the round's prefix length, in deterministic order
// (survivor order × ascending extension). Aggregators that agree on
// round and survivors — which Merge enforces — therefore freeze
// identical candidate vectors, so their support sums add index-aligned.
func candidatesFor(p heavyhitters.PEMParams, round int, survivors []Prefix) []uint64 {
	prev := 0
	if round > 0 {
		prev = p.PrefixLen(round - 1)
	}
	grow := p.PrefixLen(round) - prev
	parents := []uint64{0} // round 0: the empty prefix
	if round > 0 {
		parents = make([]uint64, len(survivors))
		for i, s := range survivors {
			parents[i] = s.Value
		}
	}
	out := make([]uint64, 0, len(parents)<<uint(grow))
	for _, c := range parents {
		base := c << uint(grow)
		for ext := uint64(0); ext < 1<<uint(grow); ext++ {
			out = append(out, base|ext)
		}
	}
	return out
}

// openRound freezes the current round's candidate set and zeroes its
// accumulator. Called whenever the protocol position changes (fresh
// aggregator, reset, advance, phase adoption, state restore); once the
// protocol is done there is no round to score and the accumulator is
// released.
func (a *Aggregator) openRound() {
	a.roundReports = 0
	if a.done {
		a.cands, a.sums = nil, nil
		return
	}
	a.cands = candidatesFor(a.params, a.round, a.survivors)
	a.sums = make([]int64, len(a.cands))
}

// Advance closes the current round (task.Phased): the round's reports
// score the candidate extensions, the top Budget (top K at the final
// round) survive, and the round counter moves on. After the final
// round the survivors with positive counts, scaled from the final
// group to the full population, become the protocol's Hits.
//
// Advancing an empty round is legal — the protocol moves on with
// zero-count survivors (kept in candidate order) rather than stalling
// a deployment whose round quota was never met.
func (a *Aggregator) Advance() error {
	if a.done {
		return fmt.Errorf("hhtask: protocol already completed all %d rounds", a.params.Levels)
	}
	cands := a.cands
	counts := a.mech.EstimateFromSupport(a.sums, a.roundReports)
	final := a.round == a.params.Levels-1
	keep := a.params.Budget()
	if final {
		keep = a.params.K
	}
	if keep > len(cands) {
		keep = len(cands)
	}
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	// Stable, so equal counts tie-break by candidate order: Advance is
	// deterministic in the merged report multiset, never in arrival or
	// shard order (the support sums are integer-valued, so float
	// accumulation order cannot perturb them either).
	sort.SliceStable(idx, func(x, y int) bool { return counts[idx[x]] > counts[idx[y]] })
	kept := make([]Prefix, keep)
	for i := 0; i < keep; i++ {
		kept[i] = Prefix{Value: cands[idx[i]], Count: counts[idx[i]]}
	}
	roundUsers := a.roundReports
	a.survivors = kept
	a.prevUsers += roundUsers
	a.round++
	if final {
		a.done = true
		scale := float64(a.prevUsers) / float64(max(roundUsers, 1))
		hits := make([]Prefix, 0, len(kept))
		for _, s := range kept {
			if s.Count <= 0 {
				continue
			}
			hits = append(hits, Prefix{Value: s.Value, Count: s.Count * scale})
		}
		a.hits = hits
	}
	a.openRound()
	return nil
}

// Frontier returns the published round state (task.Phased).
func (a *Aggregator) Frontier() (json.RawMessage, error) {
	f := Frontier{
		Mechanism:  MechanismPEM,
		Round:      a.round,
		Levels:     a.params.Levels,
		Bits:       a.params.Bits,
		Epsilon:    a.params.Epsilon,
		Done:       a.done,
		PrefixBits: a.prefixBits(),
		Prefixes:   append([]Prefix(nil), a.survivors...),
		Hits:       append([]Prefix(nil), a.hits...),
	}
	if !a.done {
		f.PrefixLen = a.params.PrefixLen(a.round)
	}
	return json.Marshal(f)
}

// AdoptPhase aligns the receiver with from's protocol position,
// dropping its own reports and history (task.Phased; see the interface
// comment for how the sharding layer uses it).
func (a *Aggregator) AdoptPhase(from task.Aggregator) error {
	o, ok := from.(*Aggregator)
	if !ok {
		return task.MergeTypeError(a, from)
	}
	if o.params != a.params {
		return fmt.Errorf("hhtask: cannot adopt phase across parameters (%+v vs %+v)", o.params, a.params)
	}
	a.round, a.done = o.round, o.done
	a.survivors = append([]Prefix(nil), o.survivors...)
	a.hits = append([]Prefix(nil), o.hits...)
	a.prevUsers = 0
	a.openRound()
	return nil
}

// AdoptFrontier aligns the aggregator with a frontier published by
// another process's collection (task.FrontierAdopter) — the relay-side
// half of multi-node round coordination. The relay drops its own
// (already-flushed) round accumulator and opens the published round
// against the published survivors; because the candidate set is a
// deterministic function of round and survivors, the relay then
// freezes the same candidate vector as the upstream, so deltas cut
// from it merge index-aligned and bit-identically.
//
// The frontier's published parameters must match the receiver's, and
// its position must satisfy the same invariants UnmarshalState
// enforces; anything else is an error leaving the receiver unchanged.
func (a *Aggregator) AdoptFrontier(raw json.RawMessage) error {
	var f Frontier
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("hhtask: bad frontier: %w", err)
	}
	if f.Mechanism != MechanismPEM {
		return fmt.Errorf("hhtask: frontier mechanism %q does not match %q", f.Mechanism, MechanismPEM)
	}
	if f.Epsilon != a.params.Epsilon || f.Bits != a.params.Bits || f.Levels != a.params.Levels {
		return fmt.Errorf("hhtask: frontier parameters (eps=%v bits=%d levels=%d) do not match aggregator (eps=%v bits=%d levels=%d)",
			f.Epsilon, f.Bits, f.Levels, a.params.Epsilon, a.params.Bits, a.params.Levels)
	}
	if f.Round < 0 || f.Round > f.Levels {
		return fmt.Errorf("hhtask: frontier round %d outside [0,%d]", f.Round, f.Levels)
	}
	if f.Done != (f.Round == f.Levels) {
		return fmt.Errorf("hhtask: frontier done=%v inconsistent with round %d of %d levels", f.Done, f.Round, f.Levels)
	}
	wantBits := 0
	if f.Round > 0 {
		wantBits = a.params.PrefixLen(f.Round - 1)
	}
	if f.PrefixBits != wantBits {
		return fmt.Errorf("hhtask: frontier prefix_bits %d, want %d at round %d", f.PrefixBits, wantBits, f.Round)
	}
	for i, p := range f.Prefixes {
		if wantBits < 64 && p.Value >= 1<<uint(wantBits) {
			return fmt.Errorf("hhtask: frontier prefix %d value %d exceeds %d bits", i, p.Value, wantBits)
		}
	}
	if !f.Done {
		// Bound the candidate set the adopted round would freeze, the
		// same guard params() applies at creation: a hostile or corrupt
		// frontier must not turn into an allocation storm at openRound.
		grow := a.params.PrefixLen(f.Round) - wantBits
		parents := 1
		if f.Round > 0 {
			parents = len(f.Prefixes)
		}
		if grow > maxRoundCandidatesLog2 || parents > maxRoundCandidates>>uint(grow) {
			return fmt.Errorf("hhtask: frontier round %d would score %d×2^%d candidates, above the limit %d",
				f.Round, parents, grow, maxRoundCandidates)
		}
	}
	a.round, a.done = f.Round, f.Done
	a.survivors = append([]Prefix(nil), f.Prefixes...)
	a.hits = append([]Prefix(nil), f.Hits...)
	a.prevUsers = 0
	a.openRound()
	return nil
}

// virgin reports whether the aggregator has never absorbed a report or
// advanced a round — the state task.New returns, and the only state in
// which Merge may adopt another aggregator's phase wholesale.
func (a *Aggregator) virgin() bool {
	return a.round == 0 && !a.done && a.prevUsers == 0 && a.roundReports == 0
}

// Merge folds another hh aggregator's state into the receiver. The
// support sums add vector-wise (both sides froze the same candidate
// set, so the vectors are index-aligned) and the report counters add;
// the replicated phase state (round, survivors, results) must agree —
// merging across rounds is a protocol violation, not a recoverable
// condition, except into a virgin receiver (a fresh merge target),
// which adopts the other's phase first.
func (a *Aggregator) Merge(other task.Aggregator) error {
	o, ok := other.(*Aggregator)
	if !ok {
		return task.MergeTypeError(a, other)
	}
	if o.params != a.params {
		return fmt.Errorf("hhtask: cannot merge across parameters (%+v vs %+v)", o.params, a.params)
	}
	if a.virgin() && o.round != 0 {
		if err := a.AdoptPhase(o); err != nil {
			return err
		}
	}
	if a.round != o.round || a.done != o.done {
		return fmt.Errorf("hhtask: cannot merge round %d (done=%v) into round %d (done=%v): %w",
			o.round, o.done, a.round, a.done, task.ErrWrongRound)
	}
	if !samePrefixes(a.survivors, o.survivors) {
		return fmt.Errorf("hhtask: cannot merge diverged frontiers at round %d", a.round)
	}
	if len(a.sums) != len(o.sums) {
		// Unreachable given equal params, round and survivors; refusing
		// beats silently misaligning the accumulators.
		return fmt.Errorf("hhtask: accumulator width %d does not match %d at round %d", len(o.sums), len(a.sums), a.round)
	}
	a.prevUsers += o.prevUsers
	for i, s := range o.sums {
		a.sums[i] += s
	}
	a.roundReports += o.roundReports
	return nil
}

func samePrefixes(a, b []Prefix) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot returns an independent deep copy of the aggregate state.
func (a *Aggregator) Snapshot() task.Aggregator {
	cp := *a
	cp.survivors = append([]Prefix(nil), a.survivors...)
	cp.cands = append([]uint64(nil), a.cands...)
	cp.sums = append([]int64(nil), a.sums...)
	cp.hits = append([]Prefix(nil), a.hits...)
	return &cp
}

// stateVersionSums identifies the accumulator state layout: support
// sums plus a round report counter instead of the report list earlier
// releases carried. The field is absent (0) in legacy report-list
// states, which UnmarshalState still restores — bit-identically, by
// folding the listed reports into a fresh accumulator at load.
const stateVersionSums = 2

// state is the JSON aggregate-state format. Counts are float64,
// support sums int64 and seeds uint64, all of which Go's JSON encoding
// round-trips exactly, so Marshal → Unmarshal reproduces the frontier
// bit for bit.
type state struct {
	V         int      `json:"v,omitempty"` // 0 = legacy report list, 2 = accumulator
	Mechanism string   `json:"mechanism"`
	Epsilon   float64  `json:"epsilon"`
	Bits      int      `json:"bits"`
	Levels    int      `json:"levels"`
	K         int      `json:"k"`
	Budget    int      `json:"budget,omitempty"`
	Round     int      `json:"round"`
	Done      bool     `json:"done,omitempty"`
	PrevUsers int      `json:"prev_users"`
	Survivors []Prefix `json:"survivors,omitempty"`
	// RoundReports and Sums are the current round's accumulator
	// (stateVersionSums states). The candidate vector itself is not
	// stored: it is a deterministic function of round and survivors,
	// recomputed at load.
	RoundReports int     `json:"round_reports,omitempty"`
	Sums         []int64 `json:"sums,omitempty"`
	// Reports is the legacy (version-0) in-flight report list.
	Reports []heavyhitters.LHReport `json:"reports,omitempty"`
	Hits    []Prefix                `json:"hits,omitempty"`
}

// MarshalState serializes the full protocol state: parameters, round
// position, surviving prefixes, the current round's accumulator and
// (when done) the final hits.
func (a *Aggregator) MarshalState() ([]byte, error) {
	return json.Marshal(state{
		V:            stateVersionSums,
		Mechanism:    MechanismPEM,
		Epsilon:      a.params.Epsilon,
		Bits:         a.params.Bits,
		Levels:       a.params.Levels,
		K:            a.params.K,
		Budget:       a.params.CandidateBudget,
		Round:        a.round,
		Done:         a.done,
		PrevUsers:    a.prevUsers,
		Survivors:    a.survivors,
		RoundReports: a.roundReports,
		Sums:         a.sums,
		Hits:         a.hits,
	})
}

// UnmarshalState restores a state blob produced by MarshalState — the
// current accumulator layout or the legacy report-list layout, which
// restores bit-identically by folding the listed reports into the
// accumulator at load. The blob's parameters must match the
// receiver's; anything else is an error leaving the receiver
// unchanged.
func (a *Aggregator) UnmarshalState(data []byte) error {
	var st state
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("hhtask: bad state: %w", err)
	}
	return a.applyState(st)
}

// applyState validates a decoded state (from either codec — the JSON
// and binary decoders feed this one path, so both restore with
// identical semantics) and installs it.
func (a *Aggregator) applyState(st state) error {
	if st.V != 0 && st.V != stateVersionSums {
		return fmt.Errorf("hhtask: state version %d not supported (have legacy and %d)", st.V, stateVersionSums)
	}
	if st.Mechanism != MechanismPEM {
		return fmt.Errorf("hhtask: state mechanism %q does not match %q", st.Mechanism, MechanismPEM)
	}
	got := heavyhitters.PEMParams{Epsilon: st.Epsilon, Bits: st.Bits, Levels: st.Levels, K: st.K, CandidateBudget: st.Budget}
	if got != a.params {
		return fmt.Errorf("hhtask: state parameters %+v do not match aggregator %+v", got, a.params)
	}
	if st.Round < 0 || st.Round > st.Levels {
		return fmt.Errorf("hhtask: state round %d outside [0,%d]", st.Round, st.Levels)
	}
	// The protocol maintains done ⇔ round == Levels (only the final
	// Advance sets done) with no reports in flight afterwards; a state
	// violating either is corrupt or hand-edited, and restoring it
	// would open a phantom round past the protocol's end.
	if st.Done != (st.Round == st.Levels) {
		return fmt.Errorf("hhtask: state done=%v inconsistent with round %d of %d levels", st.Done, st.Round, st.Levels)
	}
	if st.Done && (len(st.Reports) > 0 || len(st.Sums) > 0 || st.RoundReports > 0) {
		return fmt.Errorf("hhtask: completed state carries in-flight round data")
	}

	// Build the restored accumulator aside first: every validation
	// failure below must leave the receiver untouched.
	var cands []uint64
	var sums []int64
	roundReports := 0
	if !st.Done {
		cands = candidatesFor(a.params, st.Round, st.Survivors)
		sums = make([]int64, len(cands))
	}
	switch {
	case st.V == stateVersionSums:
		if len(st.Reports) > 0 {
			return fmt.Errorf("hhtask: version-%d state carries a legacy report list", st.V)
		}
		if st.RoundReports < 0 {
			return fmt.Errorf("hhtask: state round_reports %d negative", st.RoundReports)
		}
		if !st.Done && len(st.Sums) != len(cands) && !(len(st.Sums) == 0 && st.RoundReports == 0) {
			return fmt.Errorf("hhtask: state carries %d support sums for %d candidates", len(st.Sums), len(cands))
		}
		for i, s := range st.Sums {
			// Each report supports a candidate at most once, so a sum
			// outside [0, round_reports] cannot come from any report
			// multiset.
			if s < 0 || s > int64(st.RoundReports) {
				return fmt.Errorf("hhtask: support sum %d at candidate %d outside [0,%d]", s, i, st.RoundReports)
			}
			sums[i] = s
		}
		roundReports = st.RoundReports
	default: // legacy report list
		if st.RoundReports != 0 || len(st.Sums) > 0 {
			return fmt.Errorf("hhtask: legacy state carries accumulator fields")
		}
		for i, r := range st.Reports {
			if r.Bucket < 0 || r.Bucket >= a.mech.G() {
				return fmt.Errorf("hhtask: legacy report %d bucket %d out of range [0,%d)", i, r.Bucket, a.mech.G())
			}
		}
		// Folding at load is bit-identical to having folded each report
		// as it arrived: the sums are integer tallies of the same
		// support indicators, in an order that cannot matter.
		for _, r := range st.Reports {
			a.mech.FoldSupport(r, cands, sums)
		}
		roundReports = len(st.Reports)
	}

	a.round, a.done, a.prevUsers = st.Round, st.Done, st.PrevUsers
	a.survivors, a.hits = st.Survivors, st.Hits
	a.cands, a.sums, a.roundReports = cands, sums, roundReports
	return nil
}

// EstimateResult is the hh task's estimate payload: the protocol
// position plus, mid-protocol, the surviving frontier prefixes, or,
// once done, the discovered heavy hitters (?top=k caps either list).
type EstimateResult struct {
	Mechanism    string   `json:"mechanism"`
	Round        int      `json:"round"`
	Levels       int      `json:"levels"`
	Phase        string   `json:"phase"`
	RoundReports int      `json:"round_reports"`
	PrefixBits   int      `json:"prefix_bits"`
	Prefixes     []Prefix `json:"prefixes,omitempty"`
	Hits         []Prefix `json:"hits,omitempty"`
}

// Estimate answers an analyst query: the current frontier prefixes
// mid-protocol, the final heavy hitters once done; ?top=k keeps the k
// highest-count entries (the lists are already count-descending).
func (a *Aggregator) Estimate(query url.Values) (json.RawMessage, error) {
	res := EstimateResult{
		Mechanism:    MechanismPEM,
		Round:        a.round,
		Levels:       a.params.Levels,
		Phase:        PhaseCollecting,
		RoundReports: a.roundReports,
		PrefixBits:   a.prefixBits(),
		Prefixes:     append([]Prefix(nil), a.survivors...),
	}
	if a.done {
		res.Phase = PhaseDone
		res.Prefixes = nil
		res.Hits = append([]Prefix(nil), a.hits...)
	}
	if s := query.Get("top"); s != "" {
		k, err := strconv.Atoi(s)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("hhtask: top must be a positive integer, got %q", s)
		}
		if k < len(res.Prefixes) {
			res.Prefixes = res.Prefixes[:k]
		}
		if k < len(res.Hits) {
			res.Hits = res.Hits[:k]
		}
	}
	return json.Marshal(res)
}

// Client is the user-side half of the PEM protocol: it privatizes one
// value's prefix against a round published in the server's frontier. A
// nil source selects crypto/rand, the production configuration.
type Client struct {
	epsilon float64
	bits    int
	levels  int
	mech    heavyhitters.LHMech
	src     ldprand.Source
}

// NewClient returns a reporting client. The epsilon, bits and levels
// must match the collection's — clients read them straight from the
// frontier, which publishes all three.
func NewClient(epsilon float64, bits, levels int, src ldprand.Source) (*Client, error) {
	// K is irrelevant to the client half; validate the shared axes.
	p := heavyhitters.PEMParams{Epsilon: epsilon, Bits: bits, Levels: levels, K: 1}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	return &Client{epsilon: epsilon, bits: bits, levels: levels, mech: heavyhitters.NewLHMech(epsilon), src: src}, nil
}

// Report privatizes value v's prefix at the given round's length into
// a round-tagged wire envelope.
func (c *Client) Report(v uint64, round int) (json.RawMessage, error) {
	if round < 0 || round >= c.levels {
		return nil, fmt.Errorf("hhtask: round %d outside [0,%d)", round, c.levels)
	}
	if c.bits < 64 && v >= 1<<uint(c.bits) {
		return nil, fmt.Errorf("hhtask: value %d exceeds %d bits", v, c.bits)
	}
	p := heavyhitters.PEMParams{Epsilon: c.epsilon, Bits: c.bits, Levels: c.levels, K: 1}
	shift := uint(c.bits - p.PrefixLen(round))
	r := c.mech.Privatize(v>>shift, c.src)
	return json.Marshal(Envelope{Mechanism: MechanismPEM, Round: round, Seed: r.Seed, Bucket: r.Bucket})
}
