// Binary wire and state codecs for the frequency task. The binary
// report envelope replaces the JSON Envelope on collections negotiated
// to application/x-ldp-binary: a leading format-version byte, the
// mechanism name, and the mechanism-typed payload — raw packed bit
// vectors for the unary mechanisms instead of base64-in-JSON, varints
// for the integer reports, raw 8-byte words for SHE's noisy reals.
// Decoding feeds the exact validation the JSON path uses
// (prepareEnvelope / decodeBits), so the two wire forms accept and
// reject identical report populations.
//
// The state codec delegates to the oracle's own binary layout
// (freq.BinaryStater); every shipped mechanism implements it, and the
// task.ErrBinaryUnsupported fallback keeps a hypothetical future
// oracle without one checkpointing through JSON.
package freqtask

import (
	"fmt"

	"repro/internal/binenc"
	"repro/internal/bitvec"
	"repro/internal/freq"
	"repro/internal/task"
)

// binaryEnvelopeVersion tags the binary report envelope layout. It is
// the first payload byte and is checked before anything else is read.
const binaryEnvelopeVersion = 0

// MarshalStateBinary implements task.BinaryStater by delegating to the
// oracle's binary codec.
func (a *Aggregator) MarshalStateBinary() ([]byte, error) {
	bs, ok := a.oracle.(freq.BinaryStater)
	if !ok {
		return nil, task.ErrBinaryUnsupported
	}
	return bs.MarshalStateBinary()
}

// UnmarshalStateBinary implements task.BinaryStater.
func (a *Aggregator) UnmarshalStateBinary(data []byte) error {
	bs, ok := a.oracle.(freq.BinaryStater)
	if !ok {
		return task.ErrBinaryUnsupported
	}
	return bs.UnmarshalStateBinary(data)
}

// PrivatizeBinary runs the client half of the oracle on value v and
// encodes the report in the binary envelope layout.
func PrivatizeBinary(o freq.Oracle, v int) ([]byte, error) {
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(binaryEnvelopeVersion)
	w.String(o.Name())
	switch m := o.(type) {
	case *freq.GRR:
		w.Varint(int64(m.Privatize(v)))
	case freq.BinaryRR:
		w.Varint(int64(m.Privatize(v)))
	case *freq.UE:
		bits, err := m.Privatize(v).MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.Blob(bits)
	case *freq.SHE:
		w.Float64s(m.Privatize(v))
	case *freq.THE:
		bits, err := m.Privatize(v).MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.Blob(bits)
	case *freq.LH:
		r := m.Privatize(v)
		w.Uint64(r.Seed)
		w.Varint(int64(r.Bucket))
	case *freq.HRR:
		r := m.Privatize(v)
		w.Varint(int64(r.Index))
		w.Varint(int64(r.Sign))
	case *freq.SS:
		w.Ints(m.Privatize(v))
	default:
		return nil, fmt.Errorf("freqtask: unsupported oracle type %T", o)
	}
	return append([]byte(nil), w.Bytes()...), nil
}

// PrepareBinary implements task.BinaryReporter: it decodes one binary
// report envelope into the typed report the oracle aggregates, applying
// exactly the validation the JSON Prepare applies. Like Prepare it
// reads only the oracle's immutable configuration, so it is safe to
// run outside the shard locks.
func (a *Aggregator) PrepareBinary(payload []byte) (any, error) {
	r := binenc.NewReader(payload)
	version := int(r.Byte())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("freqtask: bad binary envelope: %w", err)
	}
	if version != binaryEnvelopeVersion {
		return nil, fmt.Errorf("freqtask: binary envelope version %d not supported", version)
	}
	mech := r.String()
	if r.Err() == nil && mech != a.oracle.Name() {
		return nil, fmt.Errorf("freqtask: envelope mechanism %q does not match oracle %q", mech, a.oracle.Name())
	}
	e := Envelope{Mechanism: mech}
	var rawBits []byte
	switch m := a.oracle.(type) {
	case *freq.GRR, freq.BinaryRR:
		e.Value = int(r.Varint())
	case *freq.UE, *freq.THE:
		rawBits = r.Blob()
	case *freq.SHE:
		e.Reals = r.Float64s()
	case *freq.LH:
		e.Seed = r.Uint64()
		e.Value = int(r.Varint())
	case *freq.HRR:
		e.Value = int(r.Varint())
		e.Sign = int8(r.Varint())
	case *freq.SS:
		e.Values = r.Ints()
	default:
		return nil, fmt.Errorf("freqtask: unsupported oracle type %T", m)
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("freqtask: bad binary envelope: %w", err)
	}
	if rawBits != nil {
		return decodeBitsRaw(rawBits, a.oracle.Domain())
	}
	return prepareEnvelope(a.oracle, e)
}

// decodeBitsRaw parses a packed bit-vector payload (the bitvec binary
// form the unary mechanisms transport) and checks its length.
func decodeBitsRaw(raw []byte, wantLen int) (*bitvec.Vector, error) {
	var v bitvec.Vector
	if err := v.UnmarshalBinary(raw); err != nil {
		return nil, err
	}
	if v.Len() != wantLen {
		return nil, fmt.Errorf("freqtask: bit vector length %d, want %d", v.Len(), wantLen)
	}
	return &v, nil
}
