// Package freqtask adapts the frequency-oracle family (internal/freq)
// to the task-generic aggregation interface (internal/task). It owns
// the frequency wire format — the Envelope JSON that clients POST and
// the per-mechanism validation that network-received reports need —
// which previously lived in internal/core; internal/core re-exports
// the names so existing callers are untouched.
//
// The adapter is behavior-identical to the pre-task frequency path:
// Add performs exactly the validation core.Aggregate performed, the
// aggregate state is the oracle state byte for byte (so pre-task
// checkpoints restore through it unchanged), and Estimate returns the
// same debiased counts /estimate always served.
package freqtask

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"net/url"
	"sort"
	"strconv"

	"repro/internal/bitvec"
	"repro/internal/freq"
	"repro/internal/ldprand"
	"repro/internal/task"
)

func init() {
	task.Register(task.TypeFreq, New)
}

// maxSHEReal bounds each component of a network-received SHE report.
// The Laplace(2/ε) noise a real client adds has tails that die off as
// e^(-|x|ε/2), so 1e9 is unreachable by eight hundred standard
// deviations even at tiny ε; the cap exists to keep adversarial
// reports from overflowing the float64 sums.
const maxSHEReal = 1e9

// Mechanism names accepted by the oracle registry.
const (
	MechanismGRR = "GRR"
	MechanismSUE = "SUE"
	MechanismOUE = "OUE"
	MechanismSHE = "SHE"
	MechanismTHE = "THE"
	MechanismBLH = "BLH"
	MechanismOLH = "OLH"
	MechanismHRR = "HRR"
	MechanismSS  = "SS"
)

// Mechanisms lists the registry names in presentation order.
func Mechanisms() []string {
	return []string{
		MechanismGRR, MechanismSUE, MechanismOUE, MechanismSHE,
		MechanismTHE, MechanismBLH, MechanismOLH, MechanismHRR,
		MechanismSS,
	}
}

// NewOracle builds a frequency oracle by registry name. A nil source
// selects crypto/rand.
func NewOracle(name string, epsilon float64, domain int, src ldprand.Source) (freq.Oracle, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("freqtask: epsilon must be positive, got %v", epsilon)
	}
	if domain < 2 {
		return nil, fmt.Errorf("freqtask: domain must be at least 2, got %d", domain)
	}
	switch name {
	case MechanismGRR:
		return freq.NewGRR(epsilon, domain, src), nil
	case MechanismSUE:
		return freq.NewSUE(epsilon, domain, src), nil
	case MechanismOUE:
		return freq.NewOUE(epsilon, domain, src), nil
	case MechanismSHE:
		return freq.NewSHE(epsilon, domain, src), nil
	case MechanismTHE:
		return freq.NewTHE(epsilon, domain, src), nil
	case MechanismBLH:
		return freq.NewBLH(epsilon, domain, src), nil
	case MechanismOLH:
		return freq.NewOLH(epsilon, domain, src), nil
	case MechanismHRR:
		return freq.NewHRR(epsilon, domain, src), nil
	case MechanismSS:
		return freq.NewSS(epsilon, domain, src), nil
	default:
		names := Mechanisms()
		sort.Strings(names)
		return nil, fmt.Errorf("freqtask: unknown mechanism %q (have %v)", name, names)
	}
}

// Envelope is the JSON wire format of one privatized frequency report.
// Exactly the fields relevant to the mechanism are set; everything a
// server receives has already been randomized on the client.
type Envelope struct {
	Mechanism string    `json:"mechanism"`
	Value     int       `json:"value,omitempty"`  // GRR report / LH bucket / HRR index
	Seed      uint64    `json:"seed,omitempty"`   // LH hash seed
	Bits      string    `json:"bits,omitempty"`   // UE/THE bit vector, base64
	Reals     []float64 `json:"reals,omitempty"`  // SHE noisy vector
	Sign      int8      `json:"sign,omitempty"`   // HRR coefficient sign
	Values    []int     `json:"values,omitempty"` // SS subset report
}

// Privatize runs the client half of the oracle on value v and wraps
// the report in an Envelope.
func Privatize(o freq.Oracle, v int) (Envelope, error) {
	switch m := o.(type) {
	case *freq.GRR:
		return Envelope{Mechanism: m.Name(), Value: m.Privatize(v)}, nil
	case freq.BinaryRR:
		return Envelope{Mechanism: m.Name(), Value: m.Privatize(v)}, nil
	case *freq.UE:
		bits, err := m.Privatize(v).MarshalBinary()
		if err != nil {
			return Envelope{}, err
		}
		return Envelope{Mechanism: m.Name(), Bits: base64.StdEncoding.EncodeToString(bits)}, nil
	case *freq.SHE:
		return Envelope{Mechanism: m.Name(), Reals: m.Privatize(v)}, nil
	case *freq.THE:
		bits, err := m.Privatize(v).MarshalBinary()
		if err != nil {
			return Envelope{}, err
		}
		return Envelope{Mechanism: m.Name(), Bits: base64.StdEncoding.EncodeToString(bits)}, nil
	case *freq.LH:
		r := m.Privatize(v)
		return Envelope{Mechanism: m.Name(), Seed: r.Seed, Value: r.Bucket}, nil
	case *freq.HRR:
		r := m.Privatize(v)
		return Envelope{Mechanism: m.Name(), Value: r.Index, Sign: r.Sign}, nil
	case *freq.SS:
		return Envelope{Mechanism: m.Name(), Values: m.Privatize(v)}, nil
	default:
		return Envelope{}, fmt.Errorf("freqtask: unsupported oracle type %T", o)
	}
}

// Aggregate folds an Envelope into the matching oracle. The envelope's
// mechanism name must match the oracle's, and malformed payloads are
// rejected rather than panicking: they arrive from the network.
//
// It is the fused form of the prepare/fold split below: prepare does
// all validation and payload decoding against the oracle's immutable
// configuration, fold is the pure accumulate. The sharding layer uses
// the halves separately (task.Preparer) so decoding runs outside the
// shard locks.
func Aggregate(o freq.Oracle, e Envelope) error {
	prepared, err := prepareEnvelope(o, e)
	if err != nil {
		return err
	}
	return foldPrepared(o, prepared)
}

// prepareEnvelope validates e against the oracle's configuration and
// decodes its payload into the typed report the oracle aggregates. It
// reads no aggregate state, so it is safe without synchronization.
func prepareEnvelope(o freq.Oracle, e Envelope) (any, error) {
	if e.Mechanism != o.Name() {
		return nil, fmt.Errorf("freqtask: envelope mechanism %q does not match oracle %q", e.Mechanism, o.Name())
	}
	switch m := o.(type) {
	case *freq.GRR:
		return prepareGRR(m, e)
	case freq.BinaryRR:
		return prepareGRR(m.GRR, e)
	case *freq.UE:
		return decodeBits(e.Bits, m.Domain())
	case *freq.SHE:
		if len(e.Reals) != m.Domain() {
			return nil, fmt.Errorf("freqtask: SHE vector length %d, want %d", len(e.Reals), m.Domain())
		}
		// A legitimate SHE component is one-hot plus Laplace(2/ε) noise
		// — astronomically unlikely to stray past single digits, let
		// alone maxSHEReal. Unbounded components would let a client
		// push the sums to ±Inf (two 1.7e308 reports suffice), which
		// poisons the aggregate and makes its JSON state unmarshalable,
		// wedging every later checkpoint of the collection.
		for _, x := range e.Reals {
			if math.IsNaN(x) || x > maxSHEReal || x < -maxSHEReal {
				return nil, fmt.Errorf("freqtask: SHE component %v outside [-%g, %g]", x, maxSHEReal, maxSHEReal)
			}
		}
		return e.Reals, nil
	case *freq.THE:
		return decodeBits(e.Bits, m.Domain())
	case *freq.LH:
		if e.Value < 0 || e.Value >= m.G() {
			return nil, fmt.Errorf("freqtask: LH bucket %d out of range [0,%d)", e.Value, m.G())
		}
		return freq.LHReport{Seed: e.Seed, Bucket: e.Value}, nil
	case *freq.HRR:
		if e.Value < 0 || e.Value >= m.PaddedDomain() {
			return nil, fmt.Errorf("freqtask: HRR index %d out of range", e.Value)
		}
		if e.Sign != 1 && e.Sign != -1 {
			return nil, fmt.Errorf("freqtask: HRR sign %d must be ±1", e.Sign)
		}
		return freq.HRRReport{Index: e.Value, Sign: e.Sign}, nil
	case *freq.SS:
		if len(e.Values) != m.K() {
			return nil, fmt.Errorf("freqtask: SS subset size %d, want %d", len(e.Values), m.K())
		}
		seen := make(map[int]bool, len(e.Values))
		for _, u := range e.Values {
			if u < 0 || u >= m.Domain() || seen[u] {
				return nil, fmt.Errorf("freqtask: SS subset value %d invalid or duplicated", u)
			}
			seen[u] = true
		}
		return e.Values, nil
	default:
		return nil, fmt.Errorf("freqtask: unsupported oracle type %T", o)
	}
}

func prepareGRR(m *freq.GRR, e Envelope) (any, error) {
	if e.Value < 0 || e.Value >= m.Domain() {
		return nil, fmt.Errorf("freqtask: GRR value %d out of domain [0,%d)", e.Value, m.Domain())
	}
	return e.Value, nil
}

// foldPrepared accumulates a value produced by prepareEnvelope on an
// oracle of the same configuration.
func foldPrepared(o freq.Oracle, prepared any) error {
	switch m := o.(type) {
	case *freq.GRR:
		if v, ok := prepared.(int); ok {
			m.Aggregate(v)
			return nil
		}
	case freq.BinaryRR:
		if v, ok := prepared.(int); ok {
			m.GRR.Aggregate(v)
			return nil
		}
	case *freq.UE:
		if v, ok := prepared.(*bitvec.Vector); ok {
			m.Aggregate(v)
			return nil
		}
	case *freq.SHE:
		if v, ok := prepared.([]float64); ok {
			m.Aggregate(v)
			return nil
		}
	case *freq.THE:
		if v, ok := prepared.(*bitvec.Vector); ok {
			m.Aggregate(v)
			return nil
		}
	case *freq.LH:
		if v, ok := prepared.(freq.LHReport); ok {
			m.Aggregate(v)
			return nil
		}
	case *freq.HRR:
		if v, ok := prepared.(freq.HRRReport); ok {
			m.Aggregate(v)
			return nil
		}
	case *freq.SS:
		if v, ok := prepared.([]int); ok {
			m.Aggregate(v)
			return nil
		}
	}
	return fmt.Errorf("freqtask: prepared value %T does not fit oracle %T", prepared, o)
}

func decodeBits(s string, wantLen int) (*bitvec.Vector, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("freqtask: bad bits encoding: %w", err)
	}
	return decodeBitsRaw(raw, wantLen)
}

// Aggregator adapts one frequency oracle to task.Aggregator.
type Aggregator struct {
	oracle freq.Oracle
}

// New builds a frequency task aggregator from a task configuration:
// Mechanism names the oracle, Epsilon and Domain parameterize it.
func New(cfg task.Config) (task.Aggregator, error) {
	o, err := NewOracle(cfg.Mechanism, cfg.Epsilon, cfg.Domain, nil)
	if err != nil {
		return nil, err
	}
	return &Aggregator{oracle: o}, nil
}

// Wrap adapts an existing oracle (tests and simulations that built one
// directly) to task.Aggregator.
func Wrap(o freq.Oracle) *Aggregator { return &Aggregator{oracle: o} }

// Oracle exposes the wrapped frequency oracle, for callers that need
// the full freq.Oracle surface (EstimateCounts, TheoreticalVariance).
func (a *Aggregator) Oracle() freq.Oracle { return a.oracle }

// Type returns "freq".
func (a *Aggregator) Type() string { return task.TypeFreq }

// Add validates and folds one Envelope (as raw JSON) into the oracle.
func (a *Aggregator) Add(report json.RawMessage) error {
	prepared, err := a.Prepare(report)
	if err != nil {
		return err
	}
	return a.Fold(prepared)
}

// Prepare parses, validates and payload-decodes one raw envelope into
// the typed report the oracle aggregates (task.Preparer). It touches
// only the oracle's immutable configuration.
func (a *Aggregator) Prepare(report json.RawMessage) (any, error) {
	var e Envelope
	if err := json.Unmarshal(report, &e); err != nil {
		return nil, fmt.Errorf("freqtask: bad envelope: %w", err)
	}
	return prepareEnvelope(a.oracle, e)
}

// Fold accumulates a Prepared report (task.Preparer).
func (a *Aggregator) Fold(prepared any) error {
	return foldPrepared(a.oracle, prepared)
}

// AddBatch folds a batch of envelopes, skipping invalid ones.
func (a *Aggregator) AddBatch(reports []json.RawMessage) (int, error) {
	return task.AddAll(a, reports)
}

// Collected returns the number of reports aggregated.
func (a *Aggregator) Collected() int { return a.oracle.Collected() }

// ReportBits returns the mechanism's per-report payload size.
func (a *Aggregator) ReportBits() int { return a.oracle.ReportBits() }

// Reset discards all aggregated reports.
func (a *Aggregator) Reset() { a.oracle.Reset() }

// Merge folds another freq aggregator's state into the receiver.
func (a *Aggregator) Merge(other task.Aggregator) error {
	o, ok := other.(*Aggregator)
	if !ok {
		return task.MergeTypeError(a, other)
	}
	return a.oracle.Merge(o.oracle)
}

// Snapshot returns an independent deep copy of the aggregate state.
func (a *Aggregator) Snapshot() task.Aggregator {
	return &Aggregator{oracle: a.oracle.Snapshot()}
}

// MarshalState serializes the oracle state. The blob is exactly the
// oracle's own state format — the format pre-task checkpoints hold —
// so untagged snapshots restore through this adapter bit-identically.
func (a *Aggregator) MarshalState() ([]byte, error) { return a.oracle.MarshalState() }

// UnmarshalState restores a state blob produced by MarshalState (or by
// the pre-task frequency pipeline).
func (a *Aggregator) UnmarshalState(data []byte) error { return a.oracle.UnmarshalState(data) }

// EstimateResult is the frequency task's estimate payload: debiased
// counts over the full domain, plus the top-k values when the query
// asked for them (?top=k), the cheap heavy-hitter read over enumerable
// domains.
type EstimateResult struct {
	Mechanism string      `json:"mechanism"`
	Domain    int         `json:"domain"`
	Counts    []float64   `json:"counts"`
	Top       []ValueHits `json:"top,omitempty"`
}

// ValueHits is one entry of the top-k listing.
type ValueHits struct {
	Value int     `json:"value"`
	Count float64 `json:"count"`
}

// Estimate returns the debiased count estimates; ?top=k adds the k
// largest values in descending count order.
func (a *Aggregator) Estimate(query url.Values) (json.RawMessage, error) {
	res := EstimateResult{
		Mechanism: a.oracle.Name(),
		Domain:    a.oracle.Domain(),
		Counts:    a.oracle.EstimateCounts(),
	}
	if s := query.Get("top"); s != "" {
		k, err := strconv.Atoi(s)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("freqtask: top must be a positive integer, got %q", s)
		}
		res.Top = topK(res.Counts, k)
	}
	return json.Marshal(res)
}

// topK returns the k highest-count values, ties broken by value order.
func topK(counts []float64, k int) []ValueHits {
	all := make([]ValueHits, len(counts))
	for v, c := range counts {
		all[v] = ValueHits{Value: v, Count: c}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Count > all[j].Count })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}
