package freqtask_test

import (
	"encoding/json"
	"net/url"
	"reflect"
	"testing"

	"repro/internal/ldprand"
	"repro/internal/task"
	"repro/internal/task/freqtask"
)

func cfg(mech string) task.Config {
	return task.Config{Task: task.TypeFreq, Mechanism: mech, Epsilon: 2, Domain: 8}
}

// envelopes privatizes n deterministic values through one oracle.
func envelopes(t *testing.T, mech string, n int, seed uint64) []json.RawMessage {
	t.Helper()
	o, err := freqtask.NewOracle(mech, 2, 8, ldprand.NewSplitMix64(seed))
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.NewSplitMix64(seed + 1)
	out := make([]json.RawMessage, n)
	for i := range out {
		env, err := freqtask.Privatize(o, ldprand.Intn(src, 8))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = raw
	}
	return out
}

// TestAdapterMatchesDirectOracle is the behavior-identity claim of the
// port: feeding the same envelope stream through the task adapter and
// through the pre-task path (Aggregate onto a bare oracle) must
// produce bit-identical estimates, for every mechanism.
func TestAdapterMatchesDirectOracle(t *testing.T) {
	for _, mech := range freqtask.Mechanisms() {
		mech := mech
		t.Run(mech, func(t *testing.T) {
			raws := envelopes(t, mech, 400, 11)

			direct, err := freqtask.NewOracle(mech, 2, 8, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, raw := range raws {
				var e freqtask.Envelope
				if err := json.Unmarshal(raw, &e); err != nil {
					t.Fatal(err)
				}
				if err := freqtask.Aggregate(direct, e); err != nil {
					t.Fatal(err)
				}
			}

			a, err := freqtask.New(cfg(mech))
			if err != nil {
				t.Fatal(err)
			}
			for _, raw := range raws {
				if err := a.Add(raw); err != nil {
					t.Fatal(err)
				}
			}

			if a.Collected() != direct.Collected() {
				t.Fatalf("collected %d want %d", a.Collected(), direct.Collected())
			}
			got := a.(*freqtask.Aggregator).Oracle().EstimateCounts()
			want := direct.EstimateCounts()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("adapter estimates differ from direct oracle:\n%v\n%v", got, want)
			}

			// And the state blob round-trips bit-identically through a
			// fresh adapter — the checkpoint contract.
			blob, err := a.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			b, err := freqtask.New(cfg(mech))
			if err != nil {
				t.Fatal(err)
			}
			if err := b.UnmarshalState(blob); err != nil {
				t.Fatal(err)
			}
			got2 := b.(*freqtask.Aggregator).Oracle().EstimateCounts()
			if !reflect.DeepEqual(got2, want) {
				t.Fatalf("restored estimates differ")
			}
		})
	}
}

// TestAdapterRestoresPreTaskOracleState pins backward compatibility:
// a state blob written by a bare oracle (what PR 3 checkpoints hold)
// restores through the adapter bit-identically.
func TestAdapterRestoresPreTaskOracleState(t *testing.T) {
	o, err := freqtask.NewOracle("OLH", 2, 8, ldprand.NewSplitMix64(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		o.Collect(i % 8)
	}
	blob, err := o.MarshalState() // the pre-task snapshot state format
	if err != nil {
		t.Fatal(err)
	}
	a, err := freqtask.New(cfg("OLH"))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if a.Collected() != 300 {
		t.Fatalf("collected %d want 300", a.Collected())
	}
	if !reflect.DeepEqual(a.(*freqtask.Aggregator).Oracle().EstimateCounts(), o.EstimateCounts()) {
		t.Fatal("pre-task oracle state restored with different estimates")
	}
}

// TestMergeMatchesSequential pins exact mergeability through the
// adapter: split a stream across two aggregators, merge, compare to
// one aggregator absorbing everything.
func TestMergeMatchesSequential(t *testing.T) {
	raws := envelopes(t, "OUE", 400, 17)
	whole, _ := freqtask.New(cfg("OUE"))
	left, _ := freqtask.New(cfg("OUE"))
	right, _ := freqtask.New(cfg("OUE"))
	for i, raw := range raws {
		if err := whole.Add(raw); err != nil {
			t.Fatal(err)
		}
		half := left
		if i%2 == 1 {
			half = right
		}
		if err := half.Add(raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := left.Merge(right.Snapshot()); err != nil {
		t.Fatal(err)
	}
	a := left.(*freqtask.Aggregator).Oracle().EstimateCounts()
	b := whole.(*freqtask.Aggregator).Oracle().EstimateCounts()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("merged estimates differ:\n%v\n%v", a, b)
	}
}

func TestEstimatePayloadAndTopK(t *testing.T) {
	a, err := freqtask.New(cfg("GRR"))
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic aggregate: value 3 dominates.
	for i := 0; i < 50; i++ {
		if err := a.Add(json.RawMessage(`{"mechanism":"GRR","value":3}`)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := a.Add(json.RawMessage(`{"mechanism":"GRR","value":5}`)); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := a.Estimate(url.Values{"top": []string{"2"}})
	if err != nil {
		t.Fatal(err)
	}
	var res freqtask.EstimateResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Domain != 8 || len(res.Counts) != 8 || res.Mechanism != "GRR" {
		t.Fatalf("estimate %+v", res)
	}
	if len(res.Top) != 2 || res.Top[0].Value != 3 || res.Top[1].Value != 5 {
		t.Fatalf("top-k %+v", res.Top)
	}
	// Oversized k clamps; bad k errors.
	raw, err = a.Estimate(url.Values{"top": []string{"100"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Top) != 8 {
		t.Fatalf("clamped top-k has %d entries", len(res.Top))
	}
	if _, err := a.Estimate(url.Values{"top": []string{"zero"}}); err == nil {
		t.Fatal("non-numeric top accepted")
	}
	if _, err := a.Estimate(url.Values{"top": []string{"0"}}); err == nil {
		t.Fatal("top=0 accepted")
	}
}

func TestAddRejectsMalformed(t *testing.T) {
	a, err := freqtask.New(cfg("GRR"))
	if err != nil {
		t.Fatal(err)
	}
	for _, raw := range []string{
		`not json`,
		`42`,
		`{"mechanism":"OLH","value":1}`,
		`{"mechanism":"GRR","value":99}`,
	} {
		if err := a.Add(json.RawMessage(raw)); err == nil {
			t.Errorf("malformed report accepted: %s", raw)
		}
	}
	if a.Collected() != 0 {
		t.Fatalf("rejected reports counted: %d", a.Collected())
	}
}
