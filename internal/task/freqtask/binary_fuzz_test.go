package freqtask_test

// Native fuzzing for PrepareBinary: binary report envelopes arrive
// from the network, so the decoder faces truncated frames, flipped
// bits, wrong-mechanism headers, and length prefixes that lie. The
// contract matches JSON Prepare's: decode either yields a report the
// oracle folds cleanly or refuses loudly — never panics, never
// over-allocates. Every mechanism's decoder runs against every input,
// so cross-mechanism confusion is fuzzed too.

import (
	"testing"

	"repro/internal/ldprand"
	"repro/internal/task"
	"repro/internal/task/freqtask"
)

func FuzzBinaryEnvelope(f *testing.F) {
	mechs := freqtask.Mechanisms()
	// Seed with one valid binary envelope per mechanism, so mutation
	// starts from each accepted layout.
	for i, mech := range mechs {
		o, err := freqtask.NewOracle(mech, 2, 8, ldprand.NewSplitMix64(uint64(i)+1))
		if err != nil {
			f.Fatal(err)
		}
		env, err := freqtask.PrivatizeBinary(o, i%8)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(env)
		if i == 0 {
			f.Add(env[:len(env)/2]) // torn mid-envelope
			flipped := append([]byte(nil), env...)
			flipped[len(flipped)-1] ^= 0x40
			f.Add(flipped)
		}
	}
	// A count prefix claiming far more elements than the payload
	// holds: the over-allocation guard must refuse, not allocate.
	f.Add([]byte{0, 2, 'S', 'S', 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, mech := range mechs {
			a, err := task.New(cfg(mech))
			if err != nil {
				t.Fatal(err)
			}
			br, ok := a.(task.BinaryReporter)
			if !ok {
				t.Fatalf("%s adapter lost its binary decoder", mech)
			}
			prepared, err := br.PrepareBinary(data)
			if err != nil {
				continue // refused loudly: the acceptable failure mode
			}
			// Accepted envelopes must fold cleanly: prepare did the
			// validation, so the fold under the shard lock cannot fail.
			if err := a.(task.Preparer).Fold(prepared); err != nil {
				t.Fatalf("%s: accepted envelope failed to fold: %v", mech, err)
			}
			if _, err := a.MarshalState(); err != nil {
				t.Fatalf("%s: state does not marshal after fold: %v", mech, err)
			}
		}
	})
}
