// Binary wire and state codecs for the sketch task. The CMS row report
// is where the JSON wire format hurts most — m perturbed bits ride as
// base64 of m whole bytes — so the binary envelope packs the row into
// a bit vector (m/8 bytes plus the length word), an ~10× wire
// reduction at Apple-scale widths. The HCMS report is a mechanism tag,
// a row, a coefficient index and a sign. Both decode paths feed the
// same prepare validation as the JSON envelope.
//
// The binary state wraps the backing sketch's binary layout in the
// same {mechanism, epsilon, sketch} guard the JSON aggState carries.
package cmstask

import (
	"fmt"

	"repro/internal/binenc"
	"repro/internal/bitvec"
)

// Layout version tags, each the first byte of its payload and checked
// before anything else is read.
const (
	binaryEnvelopeVersion = 0
	binaryStateVersion    = 0
)

// MarshalStateBinary implements task.BinaryStater: the adapter guard
// fields followed by the backing sketch's binary state as one blob.
func (a *Aggregator) MarshalStateBinary() ([]byte, error) {
	blob, err := a.cm.MarshalStateBinary()
	if err != nil {
		return nil, err
	}
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(binaryStateVersion)
	w.String(a.mechanism)
	w.Float64(a.params.Epsilon)
	w.Blob(blob)
	return append([]byte(nil), w.Bytes()...), nil
}

// UnmarshalStateBinary implements task.BinaryStater; errors leave the
// receiver unchanged.
func (a *Aggregator) UnmarshalStateBinary(data []byte) error {
	r := binenc.NewReader(data)
	version := int(r.Byte())
	if err := r.Err(); err != nil {
		return fmt.Errorf("cmstask: state: %w", err)
	}
	if version != binaryStateVersion {
		return fmt.Errorf("cmstask: binary state version %d not supported", version)
	}
	mechanism := r.String()
	epsilon := r.Float64()
	blob := r.Blob()
	if err := r.Done(); err != nil {
		return fmt.Errorf("cmstask: state: %w", err)
	}
	if mechanism != a.mechanism || epsilon != a.params.Epsilon {
		return fmt.Errorf("cmstask: state parameter mismatch")
	}
	return a.cm.UnmarshalStateBinary(blob)
}

// PrepareBinary implements task.BinaryReporter: it decodes one binary
// report envelope — unpacking the CMS bit row — and applies exactly
// the validation the JSON Prepare applies, reading only the immutable
// parameters.
func (a *Aggregator) PrepareBinary(payload []byte) (any, error) {
	r := binenc.NewReader(payload)
	version := int(r.Byte())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("cmstask: bad binary envelope: %w", err)
	}
	if version != binaryEnvelopeVersion {
		return nil, fmt.Errorf("cmstask: binary envelope version %d not supported", version)
	}
	mechanism := r.String()
	if r.Err() == nil && mechanism != a.mechanism {
		return nil, fmt.Errorf("cmstask: envelope mechanism %q does not match aggregator %q", mechanism, a.mechanism)
	}
	row := int(r.Varint())
	if a.mechanism == MechanismCMS {
		raw := r.Blob()
		if err := r.Done(); err != nil {
			return nil, fmt.Errorf("cmstask: bad binary envelope: %w", err)
		}
		var v bitvec.Vector
		if err := v.UnmarshalBinary(raw); err != nil {
			return nil, err
		}
		if v.Len() != a.params.Width {
			return nil, fmt.Errorf("cmstask: report width %d, want %d", v.Len(), a.params.Width)
		}
		bits := make([]byte, v.Len())
		for _, i := range v.Ones() {
			bits[i] = 1
		}
		return a.prepareCMSReport(row, bits)
	}
	index := int(r.Varint())
	sign := int8(r.Varint())
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("cmstask: bad binary envelope: %w", err)
	}
	return a.prepareHCMSReport(row, index, sign)
}

// ReportBinary privatizes one item into a binary wire envelope, the
// counterpart of Report for binary-negotiated collections.
func (c *Client) ReportBinary(item []byte) ([]byte, error) {
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(binaryEnvelopeVersion)
	if c.cms != nil {
		r := c.cms.Report(item)
		v := bitvec.New(len(r.Bits))
		for i, b := range r.Bits {
			if b == 1 {
				v.Set(i)
			}
		}
		packed, err := v.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.String(MechanismCMS)
		w.Varint(int64(r.Row))
		w.Blob(packed)
	} else {
		r := c.hcms.Report(item)
		w.String(MechanismHCMS)
		w.Varint(int64(r.Row))
		w.Varint(int64(r.Index))
		w.Varint(int64(r.Sign))
	}
	return append([]byte(nil), w.Bytes()...), nil
}
