package cmstask_test

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"net/url"
	"reflect"
	"testing"

	"repro/internal/cms"
	"repro/internal/ldprand"
	"repro/internal/task"
	"repro/internal/task/cmstask"
)

func sketchCfg(mech string) task.Config {
	return task.Config{Task: task.TypeSketch, Mechanism: mech, Epsilon: 2, Width: 64, Hashes: 8, SketchSeed: 42}
}

func cmsParams() cms.Params {
	return cms.Params{Epsilon: 2, Width: 64, Hashes: 8, Seed: 42}
}

// items returns a deterministic stream of n items over a small
// vocabulary (so counts accumulate).
func items(n int, seed uint64) [][]byte {
	src := ldprand.NewSplitMix64(seed)
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("word-%d", ldprand.Intn(src, 10)))
	}
	return out
}

func estimate(t *testing.T, a task.Aggregator, names ...string) cmstask.EstimateResult {
	t.Helper()
	raw, err := a.Estimate(url.Values{"item": names})
	if err != nil {
		t.Fatal(err)
	}
	var res cmstask.EstimateResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAdapterMatchesCMSServer is the fidelity claim: the task adapter
// folding client reports into its count-min backing must produce
// exactly the estimates cms.Server produces from the same reports —
// same debiasing, same hash positions, bit for bit.
func TestAdapterMatchesCMSServer(t *testing.T) {
	server, err := cms.NewServer(cmsParams())
	if err != nil {
		t.Fatal(err)
	}
	a, err := cmstask.New(sketchCfg("CMS"))
	if err != nil {
		t.Fatal(err)
	}
	client, err := cms.NewClient(cmsParams(), ldprand.NewSplitMix64(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items(3000, 2) {
		r := client.Report(it)
		if err := server.Add(r); err != nil {
			t.Fatal(err)
		}
		env := cmstask.Envelope{Mechanism: "CMS", Row: r.Row, Bits: b64(r.Bits)}
		raw, _ := json.Marshal(env)
		if err := a.Add(raw); err != nil {
			t.Fatal(err)
		}
	}
	if a.Collected() != server.Collected() {
		t.Fatalf("collected %d want %d", a.Collected(), server.Collected())
	}
	for _, name := range []string{"word-0", "word-3", "word-9", "absent"} {
		want := server.Estimate([]byte(name))
		got := estimate(t, a, name).Items[0].Count
		if got != want {
			t.Fatalf("%s: adapter %v, cms.Server %v", name, got, want)
		}
	}
}

// TestAdapterMatchesHCMSServer: same fidelity claim for the one-bit
// Hadamard variant, including the spectrum inversion at estimate time.
func TestAdapterMatchesHCMSServer(t *testing.T) {
	server, err := cms.NewHadamardServer(cmsParams())
	if err != nil {
		t.Fatal(err)
	}
	a, err := cmstask.New(sketchCfg("HCMS"))
	if err != nil {
		t.Fatal(err)
	}
	client, err := cms.NewHadamardClient(cmsParams(), ldprand.NewSplitMix64(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items(5000, 4) {
		r := client.Report(it)
		if err := server.Add(r); err != nil {
			t.Fatal(err)
		}
		env := cmstask.Envelope{Mechanism: "HCMS", Row: r.Row, Index: r.Index, Sign: r.Sign}
		raw, _ := json.Marshal(env)
		if err := a.Add(raw); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"word-1", "word-7", "missing"} {
		want := server.Estimate([]byte(name))
		got := estimate(t, a, name).Items[0].Count
		if got != want {
			t.Fatalf("%s: adapter %v, cms.HadamardServer %v", name, got, want)
		}
	}
}

// TestClientReportsAggregate checks the adapter's own client half
// produces envelopes the aggregator accepts, and the frequent item
// estimates higher than an absent one.
func TestClientReportsAggregate(t *testing.T) {
	for _, mech := range cmstask.Mechanisms() {
		mech := mech
		t.Run(mech, func(t *testing.T) {
			a, err := cmstask.New(sketchCfg(mech))
			if err != nil {
				t.Fatal(err)
			}
			client, err := cmstask.NewClient(sketchCfg(mech), ldprand.NewSplitMix64(5))
			if err != nil {
				t.Fatal(err)
			}
			const n = 4000
			for i := 0; i < n; i++ {
				raw, err := client.Report([]byte("hot"))
				if err != nil {
					t.Fatal(err)
				}
				if err := a.Add(raw); err != nil {
					t.Fatal(err)
				}
			}
			if a.Collected() != n {
				t.Fatalf("collected %d want %d", a.Collected(), n)
			}
			res := estimate(t, a, "hot", "cold")
			if len(res.Items) != 2 || res.Width != 64 || res.Hashes != 8 {
				t.Fatalf("estimate %+v", res)
			}
			hot, cold := res.Items[0].Count, res.Items[1].Count
			if hot < 0.8*n || hot > 1.2*n {
				t.Fatalf("hot estimate %v, want near %d", hot, n)
			}
			if cold > 0.2*n {
				t.Fatalf("cold estimate %v, want near 0", cold)
			}
		})
	}
}

// TestMergeAndStateRoundTrip pins exact mergeability and the
// checkpoint contract for both mechanisms.
func TestMergeAndStateRoundTrip(t *testing.T) {
	for _, mech := range cmstask.Mechanisms() {
		client, err := cmstask.NewClient(sketchCfg(mech), ldprand.NewSplitMix64(6))
		if err != nil {
			t.Fatal(err)
		}
		whole, _ := cmstask.New(sketchCfg(mech))
		left, _ := cmstask.New(sketchCfg(mech))
		right, _ := cmstask.New(sketchCfg(mech))
		for i, it := range items(1000, 7) {
			raw, err := client.Report(it)
			if err != nil {
				t.Fatal(err)
			}
			if err := whole.Add(raw); err != nil {
				t.Fatal(err)
			}
			half := left
			if i%2 == 1 {
				half = right
			}
			if err := half.Add(raw); err != nil {
				t.Fatal(err)
			}
		}
		if err := left.Merge(right.Snapshot()); err != nil {
			t.Fatal(err)
		}
		queries := []string{"word-0", "word-5", "word-9"}
		// Splitting the stream reorders the float additions, so the
		// merged estimate matches sequential up to rounding only.
		got, want := estimate(t, left, queries...), estimate(t, whole, queries...)
		for i := range want.Items {
			if diff := math.Abs(got.Items[i].Count - want.Items[i].Count); diff > 1e-6 {
				t.Fatalf("%s: %s merged %v sequential %v", mech, want.Items[i].Item, got.Items[i].Count, want.Items[i].Count)
			}
		}

		blob, err := whole.MarshalState()
		if err != nil {
			t.Fatal(err)
		}
		back, _ := cmstask.New(sketchCfg(mech))
		if err := back.UnmarshalState(blob); err != nil {
			t.Fatal(err)
		}
		if back.Collected() != whole.Collected() ||
			!reflect.DeepEqual(estimate(t, back, queries...), estimate(t, whole, queries...)) {
			t.Fatalf("%s: state round trip drifted", mech)
		}

		// Mismatched parameters are refused.
		otherCfg := sketchCfg(mech)
		otherCfg.SketchSeed = 999
		other, _ := cmstask.New(otherCfg)
		if err := other.UnmarshalState(blob); err == nil {
			t.Fatalf("%s: state restored onto mismatched seed", mech)
		}
	}
}

// TestAddRejectsMalformed pins the network-input validation.
func TestAddRejectsMalformed(t *testing.T) {
	a, err := cmstask.New(sketchCfg("CMS"))
	if err != nil {
		t.Fatal(err)
	}
	short := b64(make([]byte, 3))
	badBit := make([]byte, 64)
	badBit[5] = 7
	for _, raw := range []string{
		`not json`,
		`{"mechanism":"HCMS","row":0,"index":0,"sign":1}`,
		`{"mechanism":"CMS","row":99,"bits":"` + b64(make([]byte, 64)) + `"}`,
		`{"mechanism":"CMS","row":0,"bits":"***"}`,
		`{"mechanism":"CMS","row":0,"bits":"` + short + `"}`,
		`{"mechanism":"CMS","row":0,"bits":"` + b64(badBit) + `"}`,
	} {
		if err := a.Add(json.RawMessage(raw)); err == nil {
			t.Errorf("malformed CMS report accepted: %s", raw)
		}
	}
	h, err := cmstask.New(sketchCfg("HCMS"))
	if err != nil {
		t.Fatal(err)
	}
	for _, raw := range []string{
		`{"mechanism":"HCMS","row":0,"index":64,"sign":1}`,
		`{"mechanism":"HCMS","row":0,"index":0,"sign":0}`,
		`{"mechanism":"HCMS","row":-1,"index":0,"sign":1}`,
	} {
		if err := h.Add(json.RawMessage(raw)); err == nil {
			t.Errorf("malformed HCMS report accepted: %s", raw)
		}
	}
	if a.Collected() != 0 || h.Collected() != 0 {
		t.Fatal("rejected reports were counted")
	}
}

func b64(b []byte) string {
	return base64.StdEncoding.EncodeToString(b)
}
