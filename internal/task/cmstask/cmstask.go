// Package cmstask adapts Apple's private sketch protocols
// (internal/cms: Count-Mean-Sketch and its one-bit Hadamard variant)
// to the task-generic aggregation interface, backed by the mergeable
// count-min substrate in internal/sketch. It is the huge-domain task:
// items are arbitrary byte strings (words, URLs), never enumerated by
// the server, and analysts query the sketch for the counts of the
// candidates they care about — the heavy-hitter read over domains no
// frequency oracle could tabulate.
//
// Clients randomize locally exactly as cms.Client/cms.HadamardClient
// do; the server folds the debiased contribution of each report into a
// sketch.CountMin whose cells are then unbiased estimates of the true
// counts landing there. Because the backing sketch merges exactly and
// serializes exactly, the task inherits sharding and checkpointing for
// free.
package cmstask

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"net/url"

	"repro/internal/cms"
	"repro/internal/ldprand"
	"repro/internal/sketch"
	"repro/internal/task"
	"repro/internal/transform"
)

func init() {
	task.Register(task.TypeSketch, New)
}

// Mechanism names of the sketch task family.
const (
	MechanismCMS  = "CMS"
	MechanismHCMS = "HCMS"
)

// Mechanisms lists the sketch mechanisms in presentation order.
func Mechanisms() []string { return []string{MechanismCMS, MechanismHCMS} }

// Envelope is the JSON wire format of one privatized sketch report.
// CMS sets Bits (the perturbed ±1 row, packed as 0/1 bytes, base64);
// HCMS sets Index and Sign (one perturbed Hadamard coefficient).
type Envelope struct {
	Mechanism string `json:"mechanism"`
	Row       int    `json:"row"`
	Bits      string `json:"bits,omitempty"`
	Index     int    `json:"index,omitempty"`
	Sign      int8   `json:"sign,omitempty"`
}

// Aggregator adapts one private sketch to task.Aggregator. The backing
// CountMin holds debiased cell sums (CMS) or debiased Hadamard spectra
// (HCMS); its population total counts accepted reports, which is the n
// in the count-mean debiasing at estimate time.
type Aggregator struct {
	mechanism string
	params    cms.Params
	cEps      float64 // debias constant: (e^(ε/2)+1)/(e^(ε/2)−1) CMS, (e^ε+1)/(e^ε−1) HCMS
	cm        *sketch.CountMin
}

// New builds a sketch task aggregator: Mechanism selects "CMS" or
// "HCMS"; Epsilon, Width, Hashes and SketchSeed fill the cms.Params.
// HCMS additionally requires a power-of-two width.
func New(cfg task.Config) (task.Aggregator, error) {
	p := cms.Params{Epsilon: cfg.Epsilon, Width: cfg.Width, Hashes: cfg.Hashes, Seed: cfg.SketchSeed}
	switch cfg.Mechanism {
	case MechanismCMS:
		if err := p.Validate(false); err != nil {
			return nil, err
		}
		e2 := math.Exp(p.Epsilon / 2)
		return &Aggregator{mechanism: MechanismCMS, params: p, cEps: (e2 + 1) / (e2 - 1),
			cm: sketch.NewCountMin(p.Hashes, p.Width, p.Seed)}, nil
	case MechanismHCMS:
		if err := p.Validate(true); err != nil {
			return nil, err
		}
		e := math.Exp(p.Epsilon)
		return &Aggregator{mechanism: MechanismHCMS, params: p, cEps: (e + 1) / (e - 1),
			cm: sketch.NewCountMin(p.Hashes, p.Width, p.Seed)}, nil
	default:
		return nil, fmt.Errorf("cmstask: unknown mechanism %q (have %v)", cfg.Mechanism, Mechanisms())
	}
}

// Type returns "sketch".
func (a *Aggregator) Type() string { return task.TypeSketch }

// Add validates one sketch envelope and folds its debiased
// contribution into the backing sketch.
func (a *Aggregator) Add(report json.RawMessage) error {
	prepared, err := a.Prepare(report)
	if err != nil {
		return err
	}
	return a.Fold(prepared)
}

// preparedCMS is a validated, base64-decoded CMS row report.
type preparedCMS struct {
	row  int
	bits []byte // width bytes, each 0 or 1
}

// preparedHCMS is a validated HCMS coefficient report.
type preparedHCMS struct {
	row, index int
	sign       int8
}

// Prepare parses, validates and payload-decodes one raw envelope
// (task.Preparer); only the immutable parameters are read, so the
// expensive base64 decoding runs without synchronization.
func (a *Aggregator) Prepare(report json.RawMessage) (any, error) {
	var e Envelope
	if err := json.Unmarshal(report, &e); err != nil {
		return nil, fmt.Errorf("cmstask: bad envelope: %w", err)
	}
	if e.Mechanism != a.mechanism {
		return nil, fmt.Errorf("cmstask: envelope mechanism %q does not match aggregator %q", e.Mechanism, a.mechanism)
	}
	if a.mechanism == MechanismCMS {
		bits, err := base64.StdEncoding.DecodeString(e.Bits)
		if err != nil {
			return nil, fmt.Errorf("cmstask: bad bits encoding: %w", err)
		}
		return a.prepareCMSReport(e.Row, bits)
	}
	return a.prepareHCMSReport(e.Row, e.Index, e.Sign)
}

// prepareCMSReport validates one decoded CMS row report; the JSON and
// binary wire decoders both feed it.
func (a *Aggregator) prepareCMSReport(row int, bits []byte) (any, error) {
	if row < 0 || row >= a.params.Hashes {
		return nil, fmt.Errorf("cmstask: row %d out of range [0,%d)", row, a.params.Hashes)
	}
	if len(bits) != a.params.Width {
		return nil, fmt.Errorf("cmstask: report width %d, want %d", len(bits), a.params.Width)
	}
	for i, b := range bits {
		if b != 0 && b != 1 {
			return nil, fmt.Errorf("cmstask: report bit %d has value %d, want 0 or 1", i, b)
		}
	}
	return preparedCMS{row: row, bits: bits}, nil
}

// prepareHCMSReport validates one decoded HCMS coefficient report; the
// JSON and binary wire decoders both feed it.
func (a *Aggregator) prepareHCMSReport(row, index int, sign int8) (any, error) {
	if row < 0 || row >= a.params.Hashes {
		return nil, fmt.Errorf("cmstask: row %d out of range [0,%d)", row, a.params.Hashes)
	}
	if index < 0 || index >= a.params.Width {
		return nil, fmt.Errorf("cmstask: index %d out of range [0,%d)", index, a.params.Width)
	}
	if sign != 1 && sign != -1 {
		return nil, fmt.Errorf("cmstask: sign must be ±1, got %d", sign)
	}
	return preparedHCMS{row: row, index: index, sign: sign}, nil
}

// Fold accumulates a Prepared report (task.Preparer): every coordinate
// of a CMS row gets the debiased contribution k·(c_ε/2·v + 1/2), a
// HCMS coefficient gets k·m·c_ε·sign — exactly as cms.Server and
// cms.HadamardServer fold them.
func (a *Aggregator) Fold(prepared any) error {
	switch p := prepared.(type) {
	case preparedCMS:
		if a.mechanism != MechanismCMS {
			break
		}
		k := float64(a.params.Hashes)
		for i, b := range p.bits {
			v := -1.0
			if b == 1 {
				v = 1
			}
			a.cm.AddToCell(p.row, i, k*(a.cEps/2*v+0.5))
		}
		a.cm.AddTotal(1)
		return nil
	case preparedHCMS:
		if a.mechanism != MechanismHCMS {
			break
		}
		a.cm.AddToCell(p.row, p.index,
			float64(a.params.Hashes)*float64(a.params.Width)*a.cEps*float64(p.sign))
		a.cm.AddTotal(1)
		return nil
	}
	return fmt.Errorf("cmstask: prepared value %T does not fit mechanism %s", prepared, a.mechanism)
}

// AddBatch folds a batch of envelopes, skipping invalid ones.
func (a *Aggregator) AddBatch(reports []json.RawMessage) (int, error) {
	return task.AddAll(a, reports)
}

// Collected returns the number of reports aggregated (the sketch's
// population total: exactly one unit per accepted report).
func (a *Aggregator) Collected() int { return int(a.cm.Total()) }

// ReportBits returns the report payload size: the m-coordinate row for
// CMS, one coefficient bit for HCMS (row and index ride shared
// randomness in a deployment, as the literature counts it).
func (a *Aggregator) ReportBits() int {
	if a.mechanism == MechanismCMS {
		return a.params.Width
	}
	return 1
}

// Reset discards all aggregated reports.
func (a *Aggregator) Reset() { a.cm.Reset() }

// Merge folds another sketch aggregator's state into the receiver; the
// backing sketches enforce the parameter match.
func (a *Aggregator) Merge(other task.Aggregator) error {
	o, ok := other.(*Aggregator)
	if !ok {
		return task.MergeTypeError(a, other)
	}
	if o.mechanism != a.mechanism || o.params != a.params {
		return fmt.Errorf("cmstask: cannot merge %s into %s (parameter mismatch)", o.mechanism, a.mechanism)
	}
	return a.cm.Merge(o.cm)
}

// Snapshot returns an independent deep copy of the aggregate state.
func (a *Aggregator) Snapshot() task.Aggregator {
	cp := *a
	cp.cm = a.cm.Snapshot()
	return &cp
}

// aggState is the serialized adapter state: the mechanism and epsilon
// guard restores onto a differently-debiased aggregator (width, hashes
// and seed are guarded by the sketch state itself).
type aggState struct {
	Mechanism string          `json:"mechanism"`
	Epsilon   float64         `json:"epsilon"`
	Sketch    json.RawMessage `json:"sketch"`
}

// MarshalState serializes the aggregate state as JSON.
func (a *Aggregator) MarshalState() ([]byte, error) {
	blob, err := a.cm.MarshalState()
	if err != nil {
		return nil, err
	}
	return json.Marshal(aggState{Mechanism: a.mechanism, Epsilon: a.params.Epsilon, Sketch: blob})
}

// UnmarshalState restores a state blob produced by MarshalState.
func (a *Aggregator) UnmarshalState(data []byte) error {
	var st aggState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("cmstask: state: %w", err)
	}
	if st.Mechanism != a.mechanism || st.Epsilon != a.params.Epsilon {
		return fmt.Errorf("cmstask: state parameter mismatch")
	}
	return a.cm.UnmarshalState(st.Sketch)
}

// ItemCount is one queried item's estimate.
type ItemCount struct {
	Item  string  `json:"item"`
	Count float64 `json:"count"`
}

// EstimateResult is the sketch task's estimate payload: the unbiased
// count estimate of every queried item. The server never enumerates
// the domain — analysts name their candidates with ?item= parameters.
type EstimateResult struct {
	Mechanism string      `json:"mechanism"`
	Width     int         `json:"width"`
	Hashes    int         `json:"hashes"`
	Items     []ItemCount `json:"items"`
}

// Estimate answers ?item=a&item=b&... with per-item count estimates
// (an empty query returns an empty item list: the sketch has no
// domain to enumerate).
func (a *Aggregator) Estimate(query url.Values) (json.RawMessage, error) {
	items := query["item"]
	res := EstimateResult{
		Mechanism: a.mechanism,
		Width:     a.params.Width,
		Hashes:    a.params.Hashes,
		Items:     make([]ItemCount, 0, len(items)),
	}
	var inverted [][]float64
	if a.mechanism == MechanismHCMS && len(items) > 0 {
		// Invert every row's spectrum once, then read all items from it.
		inverted = make([][]float64, a.params.Hashes)
		for j := range inverted {
			spectrum := make([]float64, a.params.Width)
			copy(spectrum, a.cm.Row(j))
			transform.Inverse(spectrum)
			inverted[j] = spectrum
		}
	}
	for _, it := range items {
		var count float64
		if a.mechanism == MechanismCMS {
			count = a.estimateCMS([]byte(it))
		} else {
			count = a.estimateInverted(inverted, []byte(it))
		}
		res.Items = append(res.Items, ItemCount{Item: it, Count: count})
	}
	return json.Marshal(res)
}

// estimateCMS is the count-mean debiased point estimate, written with
// exactly cms.Server.Estimate's floating-point expression so the
// adapter reproduces that server's estimates bit for bit (the backing
// CountMin's EstimateMean parenthesizes the debias differently, which
// costs an ulp).
func (a *Aggregator) estimateCMS(item []byte) float64 {
	m := float64(a.params.Width)
	var sum float64
	for j := 0; j < a.params.Hashes; j++ {
		sum += a.cm.Row(j)[a.cm.Position(j, item)]
	}
	mean := sum / float64(a.params.Hashes)
	return (m / (m - 1)) * (mean - a.cm.Total()/m)
}

// estimateInverted applies the count-mean debiasing to pre-inverted
// HCMS rows, mirroring cms.HadamardServer.Estimate.
func (a *Aggregator) estimateInverted(inverted [][]float64, item []byte) float64 {
	m := float64(a.params.Width)
	var sum float64
	for j := 0; j < a.params.Hashes; j++ {
		sum += inverted[j][a.cm.Position(j, item)]
	}
	mean := sum / float64(a.params.Hashes)
	return (m / (m - 1)) * (mean - a.cm.Total()/m)
}

// Client is the user-side half of the sketch task: it privatizes one
// item (an arbitrary byte string) into a wire envelope, using the
// matching cms client. A nil source selects crypto/rand.
type Client struct {
	mechanism string
	cms       *cms.Client
	hcms      *cms.HadamardClient
}

// NewClient returns a reporting client for the configured mechanism.
func NewClient(cfg task.Config, src ldprand.Source) (*Client, error) {
	p := cms.Params{Epsilon: cfg.Epsilon, Width: cfg.Width, Hashes: cfg.Hashes, Seed: cfg.SketchSeed}
	switch cfg.Mechanism {
	case MechanismCMS:
		c, err := cms.NewClient(p, src)
		if err != nil {
			return nil, err
		}
		return &Client{mechanism: MechanismCMS, cms: c}, nil
	case MechanismHCMS:
		c, err := cms.NewHadamardClient(p, src)
		if err != nil {
			return nil, err
		}
		return &Client{mechanism: MechanismHCMS, hcms: c}, nil
	default:
		return nil, fmt.Errorf("cmstask: unknown mechanism %q (have %v)", cfg.Mechanism, Mechanisms())
	}
}

// Report privatizes one item into a wire envelope.
func (c *Client) Report(item []byte) (json.RawMessage, error) {
	var e Envelope
	if c.cms != nil {
		r := c.cms.Report(item)
		e = Envelope{Mechanism: MechanismCMS, Row: r.Row, Bits: base64.StdEncoding.EncodeToString(r.Bits)}
	} else {
		r := c.hcms.Report(item)
		e = Envelope{Mechanism: MechanismHCMS, Row: r.Row, Index: r.Index, Sign: r.Sign}
	}
	return json.Marshal(e)
}
