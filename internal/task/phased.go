package task

import (
	"encoding/json"
	"errors"
)

// ErrWrongRound reports a round-tagged envelope that does not belong to
// the aggregator's current round. Phased adapters wrap it (with the
// offending and current round numbers) so clients can distinguish "your
// protocol view is stale — refetch the frontier" from an ordinary
// malformed report; the HTTP layer maps it to 409 Conflict for the same
// reason. Check with errors.Is.
var ErrWrongRound = errors.New("task: report round does not match the collection's current round")

// Phased is an optional Aggregator capability for interactive,
// multi-round tasks — the heavy-hitter protocols over huge domains
// (PEM prefix extension, fragment puzzles) where the server's round-r
// output decides what round r+1 even asks. A phased aggregator moves
// through rounds 0..N; within a round it behaves like any aggregator
// (absorb envelopes, merge, snapshot), and between rounds Advance
// consumes the round's reports into the next round's published state.
//
// Report envelopes of a phased task carry the round they were
// privatized against; Add must reject stale or future rounds with an
// error wrapping ErrWrongRound, so a client whose view lagged an
// Advance refetches the frontier instead of polluting the new round.
//
// The capability is detected by the sharding layer, which coordinates
// the round boundary across shards: it merges every shard (the same
// exact-Merge machinery one-shot tasks use), calls Advance on the
// merged state once, keeps the full history in one shard and aligns
// the rest with AdoptPhase — so per-shard aggregators never advance on
// their own. Implementations therefore only need Advance to be correct
// on a fully merged view.
type Phased interface {
	// Round returns the current round, counting from 0.
	Round() int
	// RoundReports returns how many reports the current round has
	// absorbed (the quantity auto-advance quotas compare against).
	RoundReports() int
	// Done reports whether the protocol has completed all rounds;
	// further Advance calls are errors and further reports are
	// rejected as wrong-round.
	Done() bool
	// Frontier returns the server-published per-round state clients
	// need to participate in the current round — for PEM the round
	// number, the prefix length to report, and the surviving prefixes
	// — as task-defined JSON. After the final Advance it carries the
	// protocol's results.
	Frontier() (json.RawMessage, error)
	// Advance closes the current round: it consumes the round's
	// reports (pruning candidates, extending prefixes — whatever the
	// protocol's round boundary does), increments Round, and empties
	// RoundReports. Advancing a Done protocol is an error.
	Advance() error
	// AdoptPhase aligns the receiver with from's protocol position —
	// round, frontier state, terminal results — while dropping the
	// receiver's own tallies and report history. The sharding layer
	// calls it on the other shards after advancing the merged state,
	// so every shard validates incoming rounds identically while the
	// cumulative history lives in exactly one of them.
	AdoptPhase(from Aggregator) error
}

// FrontierAdopter is an optional capability of Phased aggregators for
// multi-node deployments: AdoptFrontier aligns the receiver with a
// protocol position published by *another process* — the JSON frontier
// an upstream aggregator serves on /frontier — rather than with a
// local peer aggregator. A relay node mirrors its upstream's round
// this way: it drops its own (already-flushed) round tallies and opens
// the published round, after which its round validation and candidate
// freezing agree with the upstream's bit for bit, so deltas cut from
// the relay merge exactly.
//
// The frontier must describe the same task parameters as the receiver
// (the published frontier carries them); anything else is an error
// leaving the receiver unchanged. Callers must have drained or
// flushed the receiver's current-round tallies first — AdoptFrontier
// discards them, exactly like AdoptPhase.
type FrontierAdopter interface {
	Phased
	AdoptFrontier(frontier json.RawMessage) error
}
