// Package task defines the task-generic aggregation contract the
// collection stack is built over. The tutorial treats LDP as a family
// of *tasks* — frequency oracles, numeric means, heavy hitters over
// huge domains, sketch-based counting — and a production collector
// serves several of them at once. An Aggregator is the server half of
// one task: it absorbs privatized report envelopes (raw JSON whose
// schema the task defines), merges exactly with its peers (every
// accumulator in the repository is linear, which is what makes sharded
// aggregation and checkpointing sound), serializes its state for
// restarts, and answers task-defined estimate queries.
//
// New task families register a Factory under their type name; the
// sharding, persistence and HTTP layers in internal/core are written
// against this interface only, so a new mechanism family ships as a
// small adapter package instead of a fork of the serving stack.
package task

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"sort"
	"sync"
)

// Task type names of the built-in adapter packages. The names are part
// of the wire and snapshot formats: collection configs and checkpoint
// envelopes carry them, so they must stay stable.
const (
	TypeFreq   = "freq"
	TypeMean   = "mean"
	TypeSketch = "sketch"
	TypeHH     = "hh"
)

// Aggregator is the server half of one LDP task. Implementations are
// not safe for concurrent use; the sharding layer serializes access
// per shard and merges.
type Aggregator interface {
	// Type returns the task type name the aggregator registers under
	// (e.g. "freq").
	Type() string
	// Add validates one privatized report envelope (raw JSON in the
	// task's schema) and folds it into the aggregate. Envelopes arrive
	// from the network: malformed ones must error, never panic.
	Add(report json.RawMessage) error
	// AddBatch folds a batch of envelopes, skipping invalid ones. It
	// returns how many were accepted plus a bounded joined error
	// describing the rejects (see AddAll).
	AddBatch(reports []json.RawMessage) (int, error)
	// Collected returns the number of reports aggregated so far.
	Collected() int
	// ReportBits returns the (approximate) size of one report in bits,
	// the communication-cost axis of the deployed systems.
	ReportBits() int
	// Reset discards all aggregated reports.
	Reset()
	// Merge folds other's aggregate state into the receiver. The two
	// aggregators must be the same task type with identical parameters;
	// anything else is an error. Merge is exact: the merged aggregator
	// estimates as if it had absorbed every report itself.
	Merge(other Aggregator) error
	// Snapshot returns an independent deep copy of the aggregate state,
	// safe to Merge or estimate from while the original keeps
	// collecting.
	Snapshot() Aggregator
	// MarshalState serializes the aggregate state (tallies plus the
	// parameters that debias them) as JSON. Accumulators are count or
	// float64 sum vectors and Go's float64 JSON encoding round-trips
	// exactly, so Marshal → Unmarshal reproduces estimates bit for bit.
	MarshalState() ([]byte, error)
	// UnmarshalState replaces the aggregate state with a previously
	// marshalled one. The state must come from the same task and
	// parameters; anything else is an error leaving the receiver
	// unchanged.
	UnmarshalState(data []byte) error
	// Estimate answers one analyst query with a task-defined JSON
	// response (frequency counts, mean ± CI, per-item sketch counts).
	// The query carries the URL parameters of GET /estimate; tasks
	// ignore parameters they do not define.
	Estimate(query url.Values) (json.RawMessage, error)
}

// Config is the JSON-serializable configuration of one task instance.
// It is the union of every built-in task's parameters — which fields
// are read (and which must be set) depends on Task — so collection
// configs and snapshots stay one flat, versionable object:
//
//	freq:   Mechanism (oracle registry name), Epsilon, Domain
//	mean:   Mechanism ("duchi" or "harmony"), Epsilon, Dim (harmony)
//	sketch: Mechanism ("CMS" or "HCMS"), Epsilon, Width, Hashes, SketchSeed
//	hh:     Mechanism ("PEM"), Epsilon, Bits, Levels, K, Budget
type Config struct {
	Task       string  `json:"task,omitempty"` // "" means TypeFreq (pre-task configs)
	Mechanism  string  `json:"mechanism"`
	Epsilon    float64 `json:"epsilon"`
	Domain     int     `json:"domain,omitempty"`
	Dim        int     `json:"dim,omitempty"`
	Width      int     `json:"width,omitempty"`
	Hashes     int     `json:"hashes,omitempty"`
	SketchSeed uint64  `json:"sketch_seed,omitempty"`
	Bits       int     `json:"bits,omitempty"`   // hh: item length in bits
	Levels     int     `json:"levels,omitempty"` // hh: protocol rounds (prefix stages)
	K          int     `json:"k,omitempty"`      // hh: heavy hitters to return
	Budget     int     `json:"budget,omitempty"` // hh: surviving prefixes kept per round (0 = 2·K)
}

// Type returns the effective task type: Task, or TypeFreq when unset —
// configs written before the task layer existed carry no tag and were
// all frequency surveys.
func (c Config) Type() string {
	if c.Task == "" {
		return TypeFreq
	}
	return c.Task
}

// Preparer is an optional Aggregator capability that splits Add into
// its two halves: Prepare parses and validates one raw envelope into a
// typed, fold-ready value, and Fold accumulates a prepared value. The
// point is lock scope — parsing and payload decoding are the expensive
// part of ingestion, and a sharding layer that detects this capability
// runs Prepare outside the shard lock and only Fold under it, so
// concurrent batches contend on vector adds, not on JSON decoding.
//
// Contract: Prepare must touch only the aggregator's immutable
// configuration (never the accumulated state), so it is safe to call
// without synchronization while other goroutines Fold; a value
// Prepared by one instance may be Folded into any instance of the same
// configuration. Fold must accept exactly the values Prepare returns —
// after a successful Prepare it should not fail (a Fold error is
// counted as a rejected report).
type Preparer interface {
	Prepare(report json.RawMessage) (any, error)
	Fold(prepared any) error
}

// ErrBinaryUnsupported marks an aggregator (or the mechanism inside
// it) that has no binary codec for the requested operation. Callers
// that detect BinaryStater or BinaryReporter structurally must still
// handle this error by falling back to JSON: an adapter family may
// implement the interface while a particular wrapped mechanism does
// not.
var ErrBinaryUnsupported = errors.New("task: binary encoding not supported")

// BinaryStater is an optional Aggregator capability: a compact binary
// codec for the aggregate state, alongside the JSON MarshalState /
// UnmarshalState pair every Aggregator carries. The two codecs must be
// interchangeable — UnmarshalStateBinary(MarshalStateBinary()) and
// UnmarshalState(MarshalState()) restore bit-identical estimates and
// frontiers — so a checkpoint may be written in either encoding and
// restored by either path.
//
// Layouts are versioned like the JSON states: the first payload byte
// is a format version tag, checked before anything else is read, and
// unknown versions are refused loudly. Malformed input (truncated,
// bit-flipped, length-lying) must return an error, never panic or
// over-allocate. MarshalStateBinary returns ErrBinaryUnsupported when
// the concrete mechanism has no binary layout; the caller falls back
// to the JSON codec.
type BinaryStater interface {
	MarshalStateBinary() ([]byte, error)
	UnmarshalStateBinary(data []byte) error
}

// BinaryReporter is an optional Aggregator capability extending
// Preparer to the binary wire encoding: PrepareBinary parses and
// validates one binary report payload into the same fold-ready values
// Prepare produces, under the same contract (immutable configuration
// only, safe without synchronization, Fold accepts the result).
// Aggregators implement it only when every report their configuration
// accepts has a binary layout; the sharding layer detects the
// capability structurally and advertises the binary content type for
// the collection.
type BinaryReporter interface {
	Preparer
	PrepareBinary(payload []byte) (any, error)
}

// Factory builds an empty Aggregator from a configuration, validating
// it (a factory error is a caller/config error, never a panic).
type Factory func(cfg Config) (Aggregator, error)

var (
	regMu     sync.RWMutex
	factories = make(map[string]Factory)
)

// Register installs the factory for a task type name. Adapter packages
// call it from init; registering a duplicate name panics (two adapters
// claiming one wire name is a build mistake, not a runtime condition).
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("task: Register needs a name and a factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("task: type %q registered twice", name))
	}
	factories[name] = f
}

// New builds an aggregator for cfg, dispatching on cfg.Type().
func New(cfg Config) (Aggregator, error) {
	name := cfg.Type()
	regMu.RLock()
	f, ok := factories[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("task: unknown task type %q (registered: %v)", name, Types())
	}
	return f(cfg)
}

// Registered reports whether a task type name has a factory.
func Registered(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := factories[name]
	return ok
}

// Types returns the registered task type names, sorted.
func Types() []string {
	regMu.RLock()
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// maxJoinedErrors bounds how many per-envelope rejections AddAll
// spells out: a systematically misconfigured client rejects an entire
// batch, and an unbounded join would build a multi-megabyte error that
// HTTP handlers then echo into response bodies.
const maxJoinedErrors = 16

// AddAll folds a batch of envelopes into a, skipping invalid ones, and
// returns the accepted count plus a joined error (detailed up to
// maxJoinedErrors rejects, then summarized). Adapters implement
// AddBatch with it; the sharding layer has its own chunked variant.
func AddAll(a Aggregator, reports []json.RawMessage) (int, error) {
	accepted, suppressed := 0, 0
	var errs []error
	for i, r := range reports {
		if err := a.Add(r); err != nil {
			if len(errs) < maxJoinedErrors {
				errs = append(errs, fmt.Errorf("envelope %d: %w", i, err))
			} else {
				suppressed++
			}
			continue
		}
		accepted++
	}
	if suppressed > 0 {
		errs = append(errs, fmt.Errorf("and %d more rejected envelopes", suppressed))
	}
	return accepted, errors.Join(errs...)
}

// MergeTypeError reports an attempt to merge across task types or
// implementations, for adapters to share.
func MergeTypeError(dst, src Aggregator) error {
	return fmt.Errorf("task: cannot merge %s (%T) into %s (%T)", src.Type(), src, dst.Type(), dst)
}
