package freq

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ldprand"
)

func TestSSSubsetShape(t *testing.T) {
	s := NewSS(1, 64, ldprand.NewSplitMix64(1))
	if s.K() < 1 || s.K() >= 64 {
		t.Fatalf("k=%d out of range", s.K())
	}
	for i := 0; i < 200; i++ {
		sub := s.Privatize(i % 64)
		if len(sub) != s.K() {
			t.Fatalf("subset size %d want %d", len(sub), s.K())
		}
		seen := make(map[int]bool)
		prev := -1
		for _, u := range sub {
			if u < 0 || u >= 64 {
				t.Fatalf("subset value %d out of domain", u)
			}
			if seen[u] {
				t.Fatalf("duplicate %d in subset", u)
			}
			if u <= prev {
				t.Fatalf("subset not sorted: %v", sub)
			}
			seen[u] = true
			prev = u
		}
	}
}

func TestSSOptimalK(t *testing.T) {
	// k ≈ d/(e^ε+1).
	s := NewSS(1, 100, nil)
	want := int(math.Round(100 / (math.E + 1)))
	if s.K() != want {
		t.Errorf("k=%d want %d", s.K(), want)
	}
	// Large ε pushes k to 1.
	if k := NewSS(6, 16, nil).K(); k != 1 {
		t.Errorf("high-eps k=%d want 1", k)
	}
}

func TestSSInclusionCalibration(t *testing.T) {
	const d, n = 32, 60000
	s := NewSS(1, d, ldprand.NewSplitMix64(2))
	inTrue, inOther := 0, 0
	for i := 0; i < n; i++ {
		sub := s.Privatize(5)
		for _, u := range sub {
			if u == 5 {
				inTrue++
			}
			if u == 17 {
				inOther++
			}
		}
	}
	if got := float64(inTrue) / n; math.Abs(got-s.P()) > 0.01 {
		t.Errorf("true inclusion %.4f want %.4f", got, s.P())
	}
	if got := float64(inOther) / n; math.Abs(got-s.Q()) > 0.01 {
		t.Errorf("other inclusion %.4f want %.4f", got, s.Q())
	}
}

func TestSSLDPBudgetExact(t *testing.T) {
	// The worst-case likelihood ratio between subsets containing the
	// truth vs not: by construction Pr[S | v∈S]/Pr[S | v∉S] = e^ε.
	for _, eps := range []float64{0.5, 1, 2} {
		s := NewSS(eps, 32, nil)
		kf, df := float64(s.K()), 32.0
		// Pr[S ∋ v | true v] / Pr[S ∋ v | true u ∉ S]: the mechanism's
		// subset distribution gives the e^ε ratio through p/(k/(d... the
		// direct check: p/(1−p) · (d−k)/k must equal e^ε.
		ratio := s.P() / (1 - s.P()) * (df - kf) / kf
		if math.Abs(ratio-math.Exp(eps)) > 1e-6*math.Exp(eps) {
			t.Errorf("eps=%v: ratio %v want %v", eps, ratio, math.Exp(eps))
		}
	}
}

func TestSSWithKPanics(t *testing.T) {
	for _, k := range []int{0, 16, 20} {
		k := k
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d accepted for d=16", k)
				}
			}()
			NewSSWithK(1, 16, k, nil)
		}()
	}
}

func TestSSAggregateValidation(t *testing.T) {
	s := NewSS(1, 16, ldprand.NewSplitMix64(3))
	good := s.Privatize(0)
	s.Aggregate(good)
	for _, bad := range [][]int{
		{0},                                    // wrong size (k for d=16,eps=1 is > 1)
		append([]int{}, make([]int, s.K())...), // duplicates of 0 when k>1
	} {
		bad := bad
		if len(bad) == s.K() && s.K() == 1 {
			continue // degenerate; skip
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad report accepted: %v", bad)
				}
			}()
			s.Aggregate(bad)
		}()
	}
}

func TestSSKAblationVarianceCurve(t *testing.T) {
	// Variance as a function of k should be minimized near the optimal
	// k = d/(e^ε+1).
	const d = 64
	eps := 1.0
	opt := NewSS(eps, d, nil)
	vOpt := opt.TheoreticalVariance(1000)
	for _, k := range []int{1, 2, 40, 60} {
		if k == opt.K() {
			continue
		}
		v := NewSSWithK(eps, d, k, nil).TheoreticalVariance(1000)
		if v < vOpt*0.98 {
			t.Errorf("k=%d variance %.1f beats optimal k=%d variance %.1f", k, v, opt.K(), vOpt)
		}
	}
}

func TestSortIntsProperty(t *testing.T) {
	f := func(xs []int) bool {
		cp := append([]int(nil), xs...)
		sortInts(cp)
		if len(cp) != len(xs) {
			return false
		}
		for i := 1; i < len(cp); i++ {
			if cp[i] < cp[i-1] {
				return false
			}
		}
		// Same multiset: compare sums and xors as a cheap proxy.
		var s1, s2, x1, x2 int
		for i := range xs {
			s1 += xs[i]
			x1 ^= xs[i]
			s2 += cp[i]
			x2 ^= cp[i]
		}
		return s1 == s2 && x1 == x2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
