package freq

import (
	"encoding/json"
	"math"

	"repro/internal/ldprand"
)

// SS is the subset-selection mechanism (Ye–Barg; compared alongside
// the Wang et al. family): the client reports a random k-subset of the
// domain that contains the true value with probability
// p = e^ε·k / (e^ε·k + d − k), with k ≈ d/(e^ε+1). Subset selection is
// asymptotically optimal for small ε, at the cost of k·log₂(d)-bit
// reports.
type SS struct {
	epsilon float64
	d       int
	k       int
	p       float64 // Pr[true value included]
	q       float64 // Pr[any other fixed value included]
	src     ldprand.Source
	support []int
	n       int
}

// NewSS returns a subset-selection oracle with the variance-optimal
// subset size k = max(1, round(d/(e^ε+1))).
func NewSS(epsilon float64, d int, src ldprand.Source) *SS {
	checkParams(epsilon, d)
	k := int(math.Round(float64(d) / (math.Exp(epsilon) + 1)))
	if k < 1 {
		k = 1
	}
	if k >= d {
		k = d - 1
	}
	return NewSSWithK(epsilon, d, k, src)
}

// NewSSWithK returns a subset-selection oracle with an explicit subset
// size, for ablations. k must be in [1, d).
func NewSSWithK(epsilon float64, d, k int, src ldprand.Source) *SS {
	checkParams(epsilon, d)
	if k < 1 || k >= d {
		panic("freq: SS subset size must be in [1, d)")
	}
	expE := math.Exp(epsilon)
	kf, df := float64(k), float64(d)
	p := expE * kf / (expE*kf + df - kf)
	// Pr[u in S | true != u] = p·(k−1)/(d−1) + (1−p)·k/(d−1).
	q := (p*(kf-1) + (1-p)*kf) / (df - 1)
	return &SS{
		epsilon: epsilon,
		d:       d,
		k:       k,
		p:       p,
		q:       q,
		src:     defaultSource(src),
		support: make([]int, d),
	}
}

// Name implements Oracle.
func (s *SS) Name() string { return "SS" }

// Epsilon implements Oracle.
func (s *SS) Epsilon() float64 { return s.epsilon }

// Domain implements Oracle.
func (s *SS) Domain() int { return s.d }

// K returns the subset size.
func (s *SS) K() int { return s.k }

// P returns Pr[true value ∈ subset].
func (s *SS) P() float64 { return s.p }

// Q returns Pr[other fixed value ∈ subset].
func (s *SS) Q() float64 { return s.q }

// Privatize reports a random k-subset (sorted ascending): with
// probability p the true value plus k−1 uniform others, otherwise k
// uniform values excluding the truth.
func (s *SS) Privatize(v int) []int {
	checkDomain(v, s.d)
	include := ldprand.Bernoulli(s.src, s.p)
	need := s.k
	out := make([]int, 0, s.k)
	if include {
		out = append(out, v)
		need--
	}
	// Reservoir-free uniform sample of `need` values from [0,d)\{v}.
	chosen := make(map[int]bool, need)
	for len(chosen) < need {
		u := ldprand.Intn(s.src, s.d-1)
		if u >= v {
			u++
		}
		chosen[u] = true
	}
	for u := range chosen {
		out = append(out, u)
	}
	sortInts(out)
	return out
}

// Aggregate folds one subset report into the support tallies. Reports
// must be k distinct in-domain values.
func (s *SS) Aggregate(report []int) {
	if len(report) != s.k {
		panic("freq: SS report size mismatch")
	}
	seen := make(map[int]bool, s.k)
	for _, u := range report {
		checkDomain(u, s.d)
		if seen[u] {
			panic("freq: SS report has duplicate values")
		}
		seen[u] = true
		s.support[u]++
	}
	s.n++
}

// Collect implements Oracle.
func (s *SS) Collect(v int) { s.Aggregate(s.Privatize(v)) }

// Collected implements Oracle.
func (s *SS) Collected() int { return s.n }

// EstimateCounts implements Oracle: ĉ_v = (support_v − n·q)/(p − q).
func (s *SS) EstimateCounts() []float64 {
	out := make([]float64, s.d)
	den := s.p - s.q
	for v, c := range s.support {
		out[v] = (float64(c) - float64(s.n)*s.q) / den
	}
	return out
}

// TheoreticalVariance implements Oracle: n·q(1−q)/(p−q)² in the f→0
// approximation.
func (s *SS) TheoreticalVariance(n int) float64 {
	den := s.p - s.q
	return float64(n) * s.q * (1 - s.q) / (den * den)
}

// ReportBits implements Oracle: k values of log₂(d) bits.
func (s *SS) ReportBits() int { return s.k * bitsFor(s.d) }

// Reset implements Oracle.
func (s *SS) Reset() {
	for i := range s.support {
		s.support[i] = 0
	}
	s.n = 0
}

// Merge implements Oracle: support tallies add component-wise. The
// subset size k must match since it fixes (p, q).
func (s *SS) Merge(other Oracle) error {
	o, ok := other.(*SS)
	if !ok {
		return mergeTypeError(s, other)
	}
	if o.d != s.d || o.k != s.k || o.epsilon != s.epsilon {
		return mergeParamError(s.Name())
	}
	for i, c := range o.support {
		s.support[i] += c
	}
	s.n += o.n
	return nil
}

// Snapshot implements Oracle.
func (s *SS) Snapshot() Oracle {
	c := *s
	c.support = append([]int(nil), s.support...)
	return &c
}

// ssState is the serialized aggregate of a subset-selection oracle.
// The subset size k is carried since it fixes (p, q).
type ssState struct {
	V         int     `json:"v,omitempty"` // 0 = current format; see checkStateVersion
	Mechanism string  `json:"mechanism"`
	Epsilon   float64 `json:"epsilon"`
	Domain    int     `json:"domain"`
	K         int     `json:"k"`
	N         int     `json:"n"`
	Support   []int   `json:"support"`
}

// MarshalState implements Oracle.
func (s *SS) MarshalState() ([]byte, error) {
	return json.Marshal(ssState{
		Mechanism: s.Name(), Epsilon: s.epsilon, Domain: s.d,
		K: s.k, N: s.n, Support: s.support,
	})
}

// UnmarshalState implements Oracle.
func (s *SS) UnmarshalState(data []byte) error {
	var st ssState
	if err := json.Unmarshal(data, &st); err != nil {
		return stateDecodeError(s.Name(), err)
	}
	return s.applyState(st)
}

// applyState validates a decoded state (shared by the JSON and binary
// codecs) and installs it.
func (s *SS) applyState(st ssState) error {
	if err := checkStateVersion(s.Name(), st.V); err != nil {
		return err
	}
	if st.Mechanism != s.Name() || st.Epsilon != s.epsilon || st.Domain != s.d || st.K != s.k {
		return stateParamError(s.Name())
	}
	if err := checkStateShape(s.Name(), st.N, len(st.Support), s.d); err != nil {
		return err
	}
	for _, c := range st.Support {
		if c < 0 || c > st.N {
			return stateShapeError(s.Name())
		}
	}
	copy(s.support, st.Support)
	s.n = st.N
	return nil
}

// sortInts is an insertion sort: subset sizes are small and this keeps
// the package free of a sort dependency on the hot path.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
