package freq

import (
	"encoding/json"
	"math"

	"repro/internal/ldprand"
)

// GRR is generalized randomized response (a.k.a. direct encoding): the
// client reports its true value with probability p = e^ε/(e^ε+d−1) and
// any other fixed value uniformly otherwise. It generalizes Warner's
// 1965 binary randomized response to a d-ary domain and is the mechanism
// of choice while d is small (d < 3e^ε + 2, the E3 crossover).
type GRR struct {
	epsilon float64
	d       int
	p, q    float64 // report truth w.p. p; each specific lie w.p. q
	src     ldprand.Source
	counts  []int
	n       int
}

// NewGRR returns a generalized randomized response oracle over [0, d).
func NewGRR(epsilon float64, d int, src ldprand.Source) *GRR {
	checkParams(epsilon, d)
	expE := math.Exp(epsilon)
	return &GRR{
		epsilon: epsilon,
		d:       d,
		p:       expE / (expE + float64(d) - 1),
		q:       1 / (expE + float64(d) - 1),
		src:     defaultSource(src),
		counts:  make([]int, d),
	}
}

// Name implements Oracle.
func (g *GRR) Name() string { return "GRR" }

// Epsilon implements Oracle.
func (g *GRR) Epsilon() float64 { return g.epsilon }

// Domain implements Oracle.
func (g *GRR) Domain() int { return g.d }

// P returns the truth-telling probability e^ε/(e^ε+d−1).
func (g *GRR) P() float64 { return g.p }

// Q returns the probability of any one specific lie, 1/(e^ε+d−1).
func (g *GRR) Q() float64 { return g.q }

// Privatize runs the client side: it returns the randomized value the
// user would transmit.
func (g *GRR) Privatize(v int) int {
	checkDomain(v, g.d)
	if ldprand.Bernoulli(g.src, g.p) {
		return v
	}
	// Uniform over the d−1 other values.
	other := ldprand.Intn(g.src, g.d-1)
	if other >= v {
		other++
	}
	return other
}

// Aggregate folds one privatized report into the tally.
func (g *GRR) Aggregate(report int) {
	checkDomain(report, g.d)
	g.counts[report]++
	g.n++
}

// Collect implements Oracle.
func (g *GRR) Collect(v int) { g.Aggregate(g.Privatize(v)) }

// Collected implements Oracle.
func (g *GRR) Collected() int { return g.n }

// EstimateCounts implements Oracle: ĉ_v = (obs_v − n·q) / (p − q).
func (g *GRR) EstimateCounts() []float64 {
	out := make([]float64, g.d)
	den := g.p - g.q
	for v, c := range g.counts {
		out[v] = (float64(c) - float64(g.n)*g.q) / den
	}
	return out
}

// TheoreticalVariance implements Oracle: n·(d−2+e^ε)/(e^ε−1)² in the
// f→0 approximation (Wang et al. 2017, eq. for DE).
func (g *GRR) TheoreticalVariance(n int) float64 {
	expE := math.Exp(g.epsilon)
	return float64(n) * (float64(g.d) - 2 + expE) / ((expE - 1) * (expE - 1))
}

// ReportBits implements Oracle: one value in [0, d).
func (g *GRR) ReportBits() int { return bitsFor(g.d) }

// Reset implements Oracle.
func (g *GRR) Reset() {
	for i := range g.counts {
		g.counts[i] = 0
	}
	g.n = 0
}

// Merge implements Oracle: tallies add component-wise.
func (g *GRR) Merge(other Oracle) error {
	o, ok := other.(*GRR)
	if !ok {
		return mergeTypeError(g, other)
	}
	return g.mergeGRR(o)
}

func (g *GRR) mergeGRR(o *GRR) error {
	if o.d != g.d || o.epsilon != g.epsilon {
		return mergeParamError(g.Name())
	}
	for i, c := range o.counts {
		g.counts[i] += c
	}
	g.n += o.n
	return nil
}

// Snapshot implements Oracle.
func (g *GRR) Snapshot() Oracle { return g.snapshotGRR() }

func (g *GRR) snapshotGRR() *GRR {
	c := *g
	c.counts = append([]int(nil), g.counts...)
	return &c
}

// grrState is the serialized aggregate of a GRR (or BinaryRR) oracle.
type grrState struct {
	V         int     `json:"v,omitempty"` // 0 = current format; see checkStateVersion
	Mechanism string  `json:"mechanism"`
	Epsilon   float64 `json:"epsilon"`
	Domain    int     `json:"domain"`
	N         int     `json:"n"`
	Counts    []int   `json:"counts"`
}

// MarshalState implements Oracle.
func (g *GRR) MarshalState() ([]byte, error) { return g.marshalStateAs(g.Name()) }

// UnmarshalState implements Oracle.
func (g *GRR) UnmarshalState(data []byte) error { return g.unmarshalStateAs(g.Name(), data) }

func (g *GRR) marshalStateAs(name string) ([]byte, error) {
	return json.Marshal(grrState{
		Mechanism: name, Epsilon: g.epsilon, Domain: g.d, N: g.n, Counts: g.counts,
	})
}

func (g *GRR) unmarshalStateAs(name string, data []byte) error {
	var st grrState
	if err := json.Unmarshal(data, &st); err != nil {
		return stateDecodeError(name, err)
	}
	return g.applyState(name, st)
}

// applyState validates a decoded state (from either codec — the JSON
// and binary decoders feed the same struct through this one path, so
// both restore with identical semantics) and installs it.
func (g *GRR) applyState(name string, st grrState) error {
	if err := checkStateVersion(name, st.V); err != nil {
		return err
	}
	if st.Mechanism != name || st.Epsilon != g.epsilon || st.Domain != g.d {
		return stateParamError(name)
	}
	if err := checkStateShape(name, st.N, len(st.Counts), g.d); err != nil {
		return err
	}
	// GRR's tally is exact: every report lands in exactly one bucket,
	// so a state whose counts do not sum to n was corrupted somewhere.
	sum := 0
	for _, c := range st.Counts {
		if c < 0 {
			return stateShapeError(name)
		}
		sum += c
	}
	if sum != st.N {
		return stateShapeError(name)
	}
	copy(g.counts, st.Counts)
	g.n = st.N
	return nil
}

// bitsFor returns ceil(log2(d)), at least 1.
func bitsFor(d int) int {
	bits := 0
	for v := d - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

// BinaryRR is Warner's original randomized response over a yes/no
// question (§1.1): answer truthfully with probability e^ε/(e^ε+1). It is
// exactly GRR with d = 2 but is kept as a named type because the
// tutorial introduces it first and example code reads better with the
// historical name.
type BinaryRR struct{ *GRR }

// NewBinaryRR returns Warner's randomized response mechanism.
func NewBinaryRR(epsilon float64, src ldprand.Source) BinaryRR {
	return BinaryRR{NewGRR(epsilon, 2, src)}
}

// Name implements Oracle.
func (BinaryRR) Name() string { return "RR" }

// Merge implements Oracle. Only another BinaryRR merges in: the
// embedded GRR would accept a plain d=2 GRR, but mixing the named
// wrapper with the generic mechanism is almost certainly a bug.
func (b BinaryRR) Merge(other Oracle) error {
	o, ok := other.(BinaryRR)
	if !ok {
		return mergeTypeError(b, other)
	}
	return b.GRR.mergeGRR(o.GRR)
}

// Snapshot implements Oracle.
func (b BinaryRR) Snapshot() Oracle { return BinaryRR{b.GRR.snapshotGRR()} }

// MarshalState implements Oracle, writing the wrapper's "RR" name so
// BinaryRR state cannot silently restore into a generic d=2 GRR.
func (b BinaryRR) MarshalState() ([]byte, error) { return b.GRR.marshalStateAs(b.Name()) }

// UnmarshalState implements Oracle.
func (b BinaryRR) UnmarshalState(data []byte) error { return b.GRR.unmarshalStateAs(b.Name(), data) }

// EstimateProportion returns the estimated fraction of "1" answers and
// the half-width of a (1−delta) confidence interval around it, using
// Warner's plug-in variance: the observed response rate r̂ gives
// Var[f̂] = r̂(1−r̂) / (n·(p−q)²), which stays calibrated at every
// frequency (the f→0 approximation badly underestimates it for d=2).
func (b BinaryRR) EstimateProportion(delta float64) (estimate, ci float64) {
	n := b.Collected()
	if n == 0 {
		return 0, math.Inf(1)
	}
	nf := float64(n)
	observedRate := float64(b.counts[1]) / nf
	est := b.EstimateCounts()[1] / nf
	den := b.p - b.q
	v := observedRate * (1 - observedRate) / (nf * den * den)
	return est, normalCIHalfWidth(v, delta)
}

// normalCIHalfWidth mirrors stats.NormalCI without importing the stats
// package (avoiding a dependency cycle for packages that embed oracles).
func normalCIHalfWidth(variance, delta float64) float64 {
	// z for common deltas; falls back to a Chebyshev-style bound.
	var z float64
	switch {
	case delta <= 0.011:
		z = 2.576
	case delta <= 0.051:
		z = 1.96
	case delta <= 0.11:
		z = 1.645
	default:
		z = 1 / math.Sqrt(delta)
	}
	return z * math.Sqrt(variance)
}
