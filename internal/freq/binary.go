// Binary state codecs for the frequency oracles. Each mechanism's
// binary layout carries exactly the fields of its JSON state struct —
// a leading format-version byte, the mechanism name, the debiasing
// parameters, the report count, and the tally vector (varint-packed
// for integer tallies, raw 8-byte words for float sums) — and both
// codecs feed the same applyState validation, so a state restored
// from either encoding is bit-identical to the other.
package freq

import (
	"repro/internal/binenc"
)

// BinaryStater is the binary-codec capability of an Oracle, mirroring
// task.BinaryStater one layer down: the task adapter wrapping an
// oracle asserts for it and falls back to JSON when the wrapped
// mechanism predates the binary layouts.
type BinaryStater interface {
	MarshalStateBinary() ([]byte, error)
	UnmarshalStateBinary(data []byte) error
}

// binaryStateVersion tags the current binary state layouts. It is the
// first byte of every payload and is checked before anything else is
// read, mirroring the JSON states' "v" field.
const binaryStateVersion = 0

// readBinaryStateVersion consumes and checks the leading version tag.
func readBinaryStateVersion(name string, r *binenc.Reader) error {
	version := int(r.Byte())
	if err := r.Err(); err != nil {
		return stateDecodeError(name, err)
	}
	return checkStateVersion(name, version)
}

// --- GRR (and BinaryRR) ---

// MarshalStateBinary implements BinaryStater.
func (g *GRR) MarshalStateBinary() ([]byte, error) { return g.marshalStateBinaryAs(g.Name()) }

// UnmarshalStateBinary implements BinaryStater.
func (g *GRR) UnmarshalStateBinary(data []byte) error {
	return g.unmarshalStateBinaryAs(g.Name(), data)
}

func (g *GRR) marshalStateBinaryAs(name string) ([]byte, error) {
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(binaryStateVersion)
	w.String(name)
	w.Float64(g.epsilon)
	w.Varint(int64(g.d))
	w.Varint(int64(g.n))
	w.Ints(g.counts)
	return append([]byte(nil), w.Bytes()...), nil
}

func (g *GRR) unmarshalStateBinaryAs(name string, data []byte) error {
	r := binenc.NewReader(data)
	if err := readBinaryStateVersion(name, r); err != nil {
		return err
	}
	var st grrState
	st.Mechanism = r.String()
	st.Epsilon = r.Float64()
	st.Domain = int(r.Varint())
	st.N = int(r.Varint())
	st.Counts = r.Ints()
	if err := r.Done(); err != nil {
		return stateDecodeError(name, err)
	}
	return g.applyState(name, st)
}

// MarshalStateBinary implements BinaryStater, writing the wrapper's
// "RR" name like MarshalState does.
func (b BinaryRR) MarshalStateBinary() ([]byte, error) { return b.GRR.marshalStateBinaryAs(b.Name()) }

// UnmarshalStateBinary implements BinaryStater.
func (b BinaryRR) UnmarshalStateBinary(data []byte) error {
	return b.GRR.unmarshalStateBinaryAs(b.Name(), data)
}

// --- UE (SUE/OUE/custom) ---

// MarshalStateBinary implements BinaryStater.
func (u *UE) MarshalStateBinary() ([]byte, error) {
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(binaryStateVersion)
	w.String(u.name)
	w.Float64(u.epsilon)
	w.Varint(int64(u.d))
	w.Float64(u.p)
	w.Float64(u.q)
	w.Varint(int64(u.n))
	w.Ints(u.ones)
	return append([]byte(nil), w.Bytes()...), nil
}

// UnmarshalStateBinary implements BinaryStater.
func (u *UE) UnmarshalStateBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := readBinaryStateVersion(u.name, r); err != nil {
		return err
	}
	var st ueState
	st.Mechanism = r.String()
	st.Epsilon = r.Float64()
	st.Domain = int(r.Varint())
	st.P = r.Float64()
	st.Q = r.Float64()
	st.N = int(r.Varint())
	st.Ones = r.Ints()
	if err := r.Done(); err != nil {
		return stateDecodeError(u.name, err)
	}
	return u.applyState(st)
}

// --- SHE ---

// MarshalStateBinary implements BinaryStater.
func (s *SHE) MarshalStateBinary() ([]byte, error) {
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(binaryStateVersion)
	w.String(s.Name())
	w.Float64(s.epsilon)
	w.Varint(int64(s.d))
	w.Varint(int64(s.n))
	w.PackedFloat64s(s.sums)
	return append([]byte(nil), w.Bytes()...), nil
}

// UnmarshalStateBinary implements BinaryStater.
func (s *SHE) UnmarshalStateBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := readBinaryStateVersion(s.Name(), r); err != nil {
		return err
	}
	var st sheState
	st.Mechanism = r.String()
	st.Epsilon = r.Float64()
	st.Domain = int(r.Varint())
	st.N = int(r.Varint())
	st.Sums = r.PackedFloat64s()
	if err := r.Done(); err != nil {
		return stateDecodeError(s.Name(), err)
	}
	return s.applyState(st)
}

// --- THE ---

// MarshalStateBinary implements BinaryStater.
func (t *THE) MarshalStateBinary() ([]byte, error) {
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(binaryStateVersion)
	w.String(t.Name())
	w.Float64(t.epsilon)
	w.Varint(int64(t.d))
	w.Float64(t.theta)
	w.Varint(int64(t.n))
	w.Ints(t.ones)
	return append([]byte(nil), w.Bytes()...), nil
}

// UnmarshalStateBinary implements BinaryStater.
func (t *THE) UnmarshalStateBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := readBinaryStateVersion(t.Name(), r); err != nil {
		return err
	}
	var st theState
	st.Mechanism = r.String()
	st.Epsilon = r.Float64()
	st.Domain = int(r.Varint())
	st.Theta = r.Float64()
	st.N = int(r.Varint())
	st.Ones = r.Ints()
	if err := r.Done(); err != nil {
		return stateDecodeError(t.Name(), err)
	}
	return t.applyState(st)
}

// --- LH (BLH/OLH/custom) ---

// MarshalStateBinary implements BinaryStater.
func (l *LH) MarshalStateBinary() ([]byte, error) {
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(binaryStateVersion)
	w.String(l.name)
	w.Float64(l.epsilon)
	w.Varint(int64(l.d))
	w.Varint(int64(l.g))
	w.Varint(int64(l.n))
	w.PackedFloat64s(l.support)
	return append([]byte(nil), w.Bytes()...), nil
}

// UnmarshalStateBinary implements BinaryStater.
func (l *LH) UnmarshalStateBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := readBinaryStateVersion(l.name, r); err != nil {
		return err
	}
	var st lhState
	st.Mechanism = r.String()
	st.Epsilon = r.Float64()
	st.Domain = int(r.Varint())
	st.G = int(r.Varint())
	st.N = int(r.Varint())
	st.Support = r.PackedFloat64s()
	if err := r.Done(); err != nil {
		return stateDecodeError(l.name, err)
	}
	return l.applyState(st)
}

// --- HRR ---

// MarshalStateBinary implements BinaryStater.
func (h *HRR) MarshalStateBinary() ([]byte, error) {
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(binaryStateVersion)
	w.String(h.Name())
	w.Float64(h.epsilon)
	w.Varint(int64(h.d))
	w.Varint(int64(h.n))
	w.PackedFloat64s(h.coefSum)
	return append([]byte(nil), w.Bytes()...), nil
}

// UnmarshalStateBinary implements BinaryStater.
func (h *HRR) UnmarshalStateBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := readBinaryStateVersion(h.Name(), r); err != nil {
		return err
	}
	var st hrrState
	st.Mechanism = r.String()
	st.Epsilon = r.Float64()
	st.Domain = int(r.Varint())
	st.N = int(r.Varint())
	st.CoefSum = r.PackedFloat64s()
	if err := r.Done(); err != nil {
		return stateDecodeError(h.Name(), err)
	}
	return h.applyState(st)
}

// --- SS ---

// MarshalStateBinary implements BinaryStater.
func (s *SS) MarshalStateBinary() ([]byte, error) {
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(binaryStateVersion)
	w.String(s.Name())
	w.Float64(s.epsilon)
	w.Varint(int64(s.d))
	w.Varint(int64(s.k))
	w.Varint(int64(s.n))
	w.Ints(s.support)
	return append([]byte(nil), w.Bytes()...), nil
}

// UnmarshalStateBinary implements BinaryStater.
func (s *SS) UnmarshalStateBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := readBinaryStateVersion(s.Name(), r); err != nil {
		return err
	}
	var st ssState
	st.Mechanism = r.String()
	st.Epsilon = r.Float64()
	st.Domain = int(r.Varint())
	st.K = int(r.Varint())
	st.N = int(r.Varint())
	st.Support = r.Ints()
	if err := r.Done(); err != nil {
		return stateDecodeError(s.Name(), err)
	}
	return s.applyState(st)
}
