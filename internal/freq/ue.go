package freq

import (
	"encoding/json"
	"math"

	"repro/internal/bitvec"
	"repro/internal/ldprand"
)

// UE is the unary-encoding family: the client one-hot encodes its value
// as a d-bit vector and perturbs every bit independently, keeping a 1
// with probability p and turning a 0 into a 1 with probability q.
//
// Symmetric UE (SUE, the perturbation inside basic RAPPOR) uses
// p = e^(ε/2)/(e^(ε/2)+1), q = 1−p. Optimized UE (OUE, Wang et al.)
// fixes p = 1/2 and spends the whole budget on protecting zeros,
// q = 1/(e^ε+1), which minimizes estimator variance.
type UE struct {
	name    string
	epsilon float64
	d       int
	p, q    float64
	src     ldprand.Source
	ones    []int // per-position counts of reported 1s
	n       int
}

// NewSUE returns the symmetric unary encoding oracle.
func NewSUE(epsilon float64, d int, src ldprand.Source) *UE {
	checkParams(epsilon, d)
	e2 := math.Exp(epsilon / 2)
	p := e2 / (e2 + 1)
	return newUE("SUE", epsilon, d, p, 1-p, src)
}

// NewOUE returns the optimized unary encoding oracle.
func NewOUE(epsilon float64, d int, src ldprand.Source) *UE {
	checkParams(epsilon, d)
	return newUE("OUE", epsilon, d, 0.5, 1/(math.Exp(epsilon)+1), src)
}

// NewUE returns a unary-encoding oracle with explicit bit-keeping
// probabilities, for ablation experiments over the (p, q) trade-off.
// The pair must satisfy the ε-LDP constraint p(1−q)/(q(1−p)) <= e^ε;
// this is checked and violations panic.
func NewUE(epsilon float64, d int, p, q float64, src ldprand.Source) *UE {
	checkParams(epsilon, d)
	if p <= 0 || p >= 1 || q <= 0 || q >= 1 {
		panic("freq: UE probabilities must be in (0,1)")
	}
	budget := math.Log(p * (1 - q) / (q * (1 - p)))
	if budget > epsilon+1e-9 {
		panic("freq: UE probabilities exceed the epsilon budget")
	}
	return newUE("UE", epsilon, d, p, q, src)
}

func newUE(name string, epsilon float64, d int, p, q float64, src ldprand.Source) *UE {
	return &UE{
		name:    name,
		epsilon: epsilon,
		d:       d,
		p:       p,
		q:       q,
		src:     defaultSource(src),
		ones:    make([]int, d),
	}
}

// Name implements Oracle.
func (u *UE) Name() string { return u.name }

// Epsilon implements Oracle.
func (u *UE) Epsilon() float64 { return u.epsilon }

// Domain implements Oracle.
func (u *UE) Domain() int { return u.d }

// P returns the probability a true 1 bit stays 1.
func (u *UE) P() float64 { return u.p }

// Q returns the probability a true 0 bit flips to 1.
func (u *UE) Q() float64 { return u.q }

// Privatize one-hot encodes v and perturbs every bit.
func (u *UE) Privatize(v int) *bitvec.Vector {
	checkDomain(v, u.d)
	out := bitvec.New(u.d)
	for i := 0; i < u.d; i++ {
		prob := u.q
		if i == v {
			prob = u.p
		}
		if ldprand.Bernoulli(u.src, prob) {
			out.Set(i)
		}
	}
	return out
}

// Aggregate folds one perturbed bit vector into the per-position tallies.
func (u *UE) Aggregate(report *bitvec.Vector) {
	if report.Len() != u.d {
		panic("freq: UE report length mismatch")
	}
	for _, i := range report.Ones() {
		u.ones[i]++
	}
	u.n++
}

// Collect implements Oracle.
func (u *UE) Collect(v int) { u.Aggregate(u.Privatize(v)) }

// Collected implements Oracle.
func (u *UE) Collected() int { return u.n }

// EstimateCounts implements Oracle: ĉ_v = (ones_v − n·q)/(p − q).
func (u *UE) EstimateCounts() []float64 {
	out := make([]float64, u.d)
	den := u.p - u.q
	for v, c := range u.ones {
		out[v] = (float64(c) - float64(u.n)*u.q) / den
	}
	return out
}

// TheoreticalVariance implements Oracle: n·q(1−q)/(p−q)². For OUE this
// equals n·4e^ε/(e^ε−1)².
func (u *UE) TheoreticalVariance(n int) float64 {
	den := u.p - u.q
	return float64(n) * u.q * (1 - u.q) / (den * den)
}

// ReportBits implements Oracle: one bit per domain value.
func (u *UE) ReportBits() int { return u.d }

// Reset implements Oracle.
func (u *UE) Reset() {
	for i := range u.ones {
		u.ones[i] = 0
	}
	u.n = 0
}

// Merge implements Oracle: per-position tallies add. The (p, q) pair
// must match exactly, which distinguishes SUE from OUE from custom UE
// even at equal ε.
func (u *UE) Merge(other Oracle) error {
	o, ok := other.(*UE)
	if !ok {
		return mergeTypeError(u, other)
	}
	if o.name != u.name || o.d != u.d || o.epsilon != u.epsilon || o.p != u.p || o.q != u.q {
		return mergeParamError(u.name)
	}
	for i, c := range o.ones {
		u.ones[i] += c
	}
	u.n += o.n
	return nil
}

// Snapshot implements Oracle.
func (u *UE) Snapshot() Oracle {
	c := *u
	c.ones = append([]int(nil), u.ones...)
	return &c
}

// ueState is the serialized aggregate of a unary-encoding oracle. The
// (p, q) pair is carried so SUE, OUE and custom-UE state stay mutually
// exclusive even at equal ε (they debias with different constants).
type ueState struct {
	V         int     `json:"v,omitempty"` // 0 = current format; see checkStateVersion
	Mechanism string  `json:"mechanism"`
	Epsilon   float64 `json:"epsilon"`
	Domain    int     `json:"domain"`
	P         float64 `json:"p"`
	Q         float64 `json:"q"`
	N         int     `json:"n"`
	Ones      []int   `json:"ones"`
}

// MarshalState implements Oracle.
func (u *UE) MarshalState() ([]byte, error) {
	return json.Marshal(ueState{
		Mechanism: u.name, Epsilon: u.epsilon, Domain: u.d,
		P: u.p, Q: u.q, N: u.n, Ones: u.ones,
	})
}

// UnmarshalState implements Oracle.
func (u *UE) UnmarshalState(data []byte) error {
	var st ueState
	if err := json.Unmarshal(data, &st); err != nil {
		return stateDecodeError(u.name, err)
	}
	return u.applyState(st)
}

// applyState validates a decoded state (shared by the JSON and binary
// codecs) and installs it.
func (u *UE) applyState(st ueState) error {
	if err := checkStateVersion(u.name, st.V); err != nil {
		return err
	}
	if st.Mechanism != u.name || st.Epsilon != u.epsilon || st.Domain != u.d ||
		st.P != u.p || st.Q != u.q {
		return stateParamError(u.name)
	}
	if err := checkStateShape(u.name, st.N, len(st.Ones), u.d); err != nil {
		return err
	}
	for _, c := range st.Ones {
		// Each position tallies at most one 1 per report.
		if c < 0 || c > st.N {
			return stateShapeError(u.name)
		}
	}
	copy(u.ones, st.Ones)
	u.n = st.N
	return nil
}
