package freq

// Privacy tests: the point of every mechanism here is the ε-LDP bound
// Pr[report | v] <= e^ε · Pr[report | v'], so these tests verify the
// bound itself — analytically from the mechanism's probabilities where
// closed forms exist, and empirically from report histograms where the
// output space is enumerable.

import (
	"math"
	"testing"

	"repro/internal/ldprand"
)

// TestGRRAnalyticLDPBound checks the exact worst-case likelihood ratio
// of generalized randomized response: p/q must equal e^ε exactly.
func TestGRRAnalyticLDPBound(t *testing.T) {
	for _, eps := range []float64{0.1, 0.5, 1, 2, 5} {
		for _, d := range []int{2, 10, 100} {
			g := NewGRR(eps, d, nil)
			ratio := g.P() / g.Q()
			if math.Abs(ratio-math.Exp(eps)) > 1e-9*math.Exp(eps) {
				t.Errorf("eps=%v d=%d: ratio %v want e^eps=%v", eps, d, ratio, math.Exp(eps))
			}
		}
	}
}

// TestGRREmpiricalLDPBound estimates Pr[report | value] from samples
// for every (value, report) pair and checks that no ratio exceeds e^ε
// beyond sampling error.
func TestGRREmpiricalLDPBound(t *testing.T) {
	const eps, d, n = 1.0, 4, 400000
	src := ldprand.NewSplitMix64(17)
	g := NewGRR(eps, d, src)
	probs := make([][]float64, d)
	for v := 0; v < d; v++ {
		counts := make([]int, d)
		for i := 0; i < n; i++ {
			counts[g.Privatize(v)]++
		}
		probs[v] = make([]float64, d)
		for r := 0; r < d; r++ {
			probs[v][r] = float64(counts[r]) / n
		}
	}
	bound := math.Exp(eps) * 1.05 // 5% slack for sampling error
	for r := 0; r < d; r++ {
		for v1 := 0; v1 < d; v1++ {
			for v2 := 0; v2 < d; v2++ {
				if probs[v2][r] == 0 {
					continue
				}
				if ratio := probs[v1][r] / probs[v2][r]; ratio > bound {
					t.Errorf("report %d: Pr[.|%d]/Pr[.|%d] = %.3f > %.3f", r, v1, v2, ratio, bound)
				}
			}
		}
	}
}

// ueWorstRatio returns the worst per-report likelihood ratio of a
// unary encoding: two values differ in two bit positions, so the ratio
// is (p(1−q)) / (q(1−p)).
func ueWorstRatio(p, q float64) float64 {
	return (p * (1 - q)) / (q * (1 - p))
}

// TestUEAnalyticLDPBound checks SUE and OUE spend exactly ε.
func TestUEAnalyticLDPBound(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 2, 4} {
		sue := NewSUE(eps, 8, nil)
		oue := NewOUE(eps, 8, nil)
		for name, u := range map[string]*UE{"SUE": sue, "OUE": oue} {
			ratio := ueWorstRatio(u.P(), u.Q())
			if ratio > math.Exp(eps)*(1+1e-9) {
				t.Errorf("%s eps=%v: worst ratio %v exceeds e^eps %v", name, eps, ratio, math.Exp(eps))
			}
			// Both should use the full budget (ratio = e^ε), not waste it.
			if ratio < math.Exp(eps)*(1-1e-6) {
				t.Errorf("%s eps=%v: ratio %v wastes budget (e^eps %v)", name, eps, ratio, math.Exp(eps))
			}
		}
	}
}

// TestTHEAnalyticLDPBound: thresholding Laplace(2/ε)-noised one-hot
// vectors is post-processing of an ε-LDP mechanism, so the induced
// per-bit probabilities must respect the same budget.
func TestTHEAnalyticLDPBound(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 2} {
		th := NewTHE(eps, 8, nil)
		ratio := ueWorstRatio(th.p, th.q)
		if ratio > math.Exp(eps)*(1+1e-9) {
			t.Errorf("eps=%v: THE ratio %v exceeds e^eps %v", eps, ratio, math.Exp(eps))
		}
	}
}

// TestLHAnalyticLDPBound: the GRR-over-buckets step must spend exactly
// ε regardless of g.
func TestLHAnalyticLDPBound(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 2} {
		for _, g := range []int{2, 4, 16} {
			lh := NewLH(eps, 64, g, nil)
			q := (1 - lh.p) / float64(g-1)
			ratio := lh.p / q
			if math.Abs(ratio-math.Exp(eps)) > 1e-9*math.Exp(eps) {
				t.Errorf("eps=%v g=%d: ratio %v want %v", eps, g, ratio, math.Exp(eps))
			}
		}
	}
}

// TestHRRAnalyticLDPBound: the sign flip must spend exactly ε; the
// coefficient index is value-independent and costs nothing.
func TestHRRAnalyticLDPBound(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 3} {
		h := NewHRR(eps, 16, nil)
		ratio := h.p / (1 - h.p)
		if math.Abs(ratio-math.Exp(eps)) > 1e-9*math.Exp(eps) {
			t.Errorf("eps=%v: sign ratio %v want %v", eps, ratio, math.Exp(eps))
		}
	}
}

// TestSHEAnalyticLDPBound: two one-hot encodings differ by 1 in two
// coordinates (L1 distance 2), and Laplace(2/ε) noise bounds the
// density ratio of the full report by e^{2/(2/ε)} = e^ε. Verified
// numerically on the log-density difference at representative points.
func TestSHEAnalyticLDPBound(t *testing.T) {
	const eps = 1.0
	b := 2 / eps
	// Log-density of Laplace(0,b) at x, up to a shared constant.
	logDens := func(x float64) float64 { return -math.Abs(x) / b }
	// Reports are vectors; the ratio factorizes per coordinate, and
	// only the two coordinates where the one-hots differ contribute.
	worst := 0.0
	for _, x := range []float64{-3, -1, -0.5, 0, 0.3, 0.99, 1.5, 4} {
		// Coordinate that is 1 under v1, 0 under v2: densities at
		// (x−1) vs x; plus the symmetric coordinate.
		diff := (logDens(x-1) - logDens(x)) + (logDens(x) - logDens(x-1))
		_ = diff                        // identical coordinates cancel; compute the true worst pair:
		d1 := logDens(x-1) - logDens(x) // coordinate where v1 has the 1
		if d1 > worst {
			worst = d1
		}
	}
	// Each of the two differing coordinates contributes at most 1/b in
	// log space, so the total is at most 2/b = ε.
	if 2*worst > eps+1e-9 {
		t.Errorf("SHE log-ratio bound %v exceeds eps %v", 2*worst, eps)
	}
}

// TestBinaryRREmpiricalLDP: the original Warner mechanism, end to end:
// report distributions under v=0 and v=1 must be within e^ε of each
// other.
func TestBinaryRREmpiricalLDP(t *testing.T) {
	const eps, n = 0.7, 300000
	src := ldprand.NewSplitMix64(23)
	rr := NewBinaryRR(eps, src)
	ones0, ones1 := 0, 0
	for i := 0; i < n; i++ {
		ones0 += rr.Privatize(0)
		ones1 += rr.Privatize(1)
	}
	p0, p1 := float64(ones0)/n, float64(ones1)/n
	bound := math.Exp(eps) * 1.03
	for _, ratio := range []float64{p1 / p0, p0 / p1, (1 - p0) / (1 - p1), (1 - p1) / (1 - p0)} {
		if ratio > bound {
			t.Errorf("binary RR ratio %.3f exceeds %.3f", ratio, bound)
		}
	}
}

// TestEstimatorLinearity: all oracles' estimators are linear in the
// aggregated reports, so merging two report streams must equal the
// estimate of the concatenated stream. This is what lets deployments
// shard aggregation.
func TestEstimatorLinearity(t *testing.T) {
	const d = 8
	for _, m := range Mechanisms() {
		if m.Name == "HRR" || m.Name == "BLH" || m.Name == "OLH" {
			continue // randomized reports differ per run; linearity is
			// exercised for these via the envelope round-trip test in core
		}
		// Feed the same deterministic report stream into one oracle and
		// into two oracles whose estimates are summed.
		oA := m.Build(Config{Epsilon: 1, Domain: d, Source: ldprand.NewSplitMix64(31)})
		oB1 := m.Build(Config{Epsilon: 1, Domain: d, Source: ldprand.NewSplitMix64(31)})
		oB2 := m.Build(Config{Epsilon: 1, Domain: d, Source: ldprand.NewSplitMix64(99)})
		for i := 0; i < 2000; i++ {
			oA.Collect(i % d)
			if i < 1000 {
				oB1.Collect(i % d)
			} else {
				oB2.Collect(i % d)
			}
		}
		estA := oA.EstimateCounts()
		estB1 := oB1.EstimateCounts()
		estB2 := oB2.EstimateCounts()
		// The streams use different randomness, so the estimates are not
		// equal; but the *estimator* must be additive: est(n1+n2 reports)
		// computed from split tallies equals the sum of the two splits'
		// estimates. Verify by construction on the identical-source pair.
		_ = estB2
		var sumA, sumB float64
		for v := 0; v < d; v++ {
			sumA += estA[v]
			sumB += estB1[v] + estB2[v]
		}
		if math.Abs(sumA-2000) > 600 {
			t.Errorf("%s: estimates sum %v, want about 2000", m.Name, sumA)
		}
		if math.Abs(sumB-2000) > 600 {
			t.Errorf("%s: sharded estimates sum %v, want about 2000", m.Name, sumB)
		}
	}
}
