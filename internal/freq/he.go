package freq

import (
	"encoding/json"
	"math"

	"repro/internal/bitvec"
	"repro/internal/ldprand"
)

// SHE is summation histogram encoding: the client one-hot encodes its
// value and adds independent Laplace(2/ε) noise to every component
// (sensitivity 2 because switching values changes two components by 1).
// The server simply sums the noisy vectors; the sums are already
// unbiased counts. Communication is d floating-point numbers — the
// expensive end of the spectrum in E2.
type SHE struct {
	epsilon float64
	d       int
	b       float64 // Laplace scale 2/ε
	src     ldprand.Source
	sums    []float64
	n       int
}

// NewSHE returns a summation histogram-encoding oracle.
func NewSHE(epsilon float64, d int, src ldprand.Source) *SHE {
	checkParams(epsilon, d)
	return &SHE{
		epsilon: epsilon,
		d:       d,
		b:       2 / epsilon,
		src:     defaultSource(src),
		sums:    make([]float64, d),
	}
}

// Name implements Oracle.
func (s *SHE) Name() string { return "SHE" }

// Epsilon implements Oracle.
func (s *SHE) Epsilon() float64 { return s.epsilon }

// Domain implements Oracle.
func (s *SHE) Domain() int { return s.d }

// Privatize returns the one-hot vector of v plus Laplace(2/ε) noise on
// every component.
func (s *SHE) Privatize(v int) []float64 {
	checkDomain(v, s.d)
	out := make([]float64, s.d)
	for i := range out {
		out[i] = ldprand.Laplace(s.src, s.b)
	}
	out[v]++
	return out
}

// Aggregate folds one noisy vector into the running sums.
func (s *SHE) Aggregate(report []float64) {
	if len(report) != s.d {
		panic("freq: SHE report length mismatch")
	}
	for i, x := range report {
		s.sums[i] += x
	}
	s.n++
}

// Collect implements Oracle.
func (s *SHE) Collect(v int) { s.Aggregate(s.Privatize(v)) }

// Collected implements Oracle.
func (s *SHE) Collected() int { return s.n }

// EstimateCounts implements Oracle: the component sums are unbiased.
func (s *SHE) EstimateCounts() []float64 {
	out := make([]float64, s.d)
	copy(out, s.sums)
	return out
}

// TheoreticalVariance implements Oracle: each report contributes
// Laplace variance 2b² = 8/ε² per component.
func (s *SHE) TheoreticalVariance(n int) float64 {
	return float64(n) * 8 / (s.epsilon * s.epsilon)
}

// ReportBits implements Oracle: d 64-bit floats.
func (s *SHE) ReportBits() int { return 64 * s.d }

// Reset implements Oracle.
func (s *SHE) Reset() {
	for i := range s.sums {
		s.sums[i] = 0
	}
	s.n = 0
}

// Merge implements Oracle: the noisy sums add component-wise.
func (s *SHE) Merge(other Oracle) error {
	o, ok := other.(*SHE)
	if !ok {
		return mergeTypeError(s, other)
	}
	if o.d != s.d || o.epsilon != s.epsilon {
		return mergeParamError(s.Name())
	}
	for i, x := range o.sums {
		s.sums[i] += x
	}
	s.n += o.n
	return nil
}

// Snapshot implements Oracle.
func (s *SHE) Snapshot() Oracle {
	c := *s
	c.sums = append([]float64(nil), s.sums...)
	return &c
}

// sheState is the serialized aggregate of an SHE oracle. The sums are
// float64 and JSON round-trips them exactly (shortest representation
// that parses back to the same bits).
type sheState struct {
	V         int       `json:"v,omitempty"` // 0 = current format; see checkStateVersion
	Mechanism string    `json:"mechanism"`
	Epsilon   float64   `json:"epsilon"`
	Domain    int       `json:"domain"`
	N         int       `json:"n"`
	Sums      []float64 `json:"sums"`
}

// MarshalState implements Oracle.
func (s *SHE) MarshalState() ([]byte, error) {
	return json.Marshal(sheState{
		Mechanism: s.Name(), Epsilon: s.epsilon, Domain: s.d, N: s.n, Sums: s.sums,
	})
}

// UnmarshalState implements Oracle.
func (s *SHE) UnmarshalState(data []byte) error {
	var st sheState
	if err := json.Unmarshal(data, &st); err != nil {
		return stateDecodeError(s.Name(), err)
	}
	return s.applyState(st)
}

// applyState validates a decoded state (shared by the JSON and binary
// codecs) and installs it.
func (s *SHE) applyState(st sheState) error {
	if err := checkStateVersion(s.Name(), st.V); err != nil {
		return err
	}
	if st.Mechanism != s.Name() || st.Epsilon != s.epsilon || st.Domain != s.d {
		return stateParamError(s.Name())
	}
	if err := checkStateShape(s.Name(), st.N, len(st.Sums), s.d); err != nil {
		return err
	}
	copy(s.sums, st.Sums)
	s.n = st.N
	return nil
}

// THE is thresholded histogram encoding: like SHE, but the client only
// reports which noisy components exceed a threshold θ, turning the
// report into a bit vector. A true 1-component exceeds θ with
// probability p = 1 − F(θ−1), a 0-component with q = 1 − F(θ), where F
// is the Laplace(2/ε) CDF; the usual (c − nq)/(p − q) estimator applies.
// θ is chosen in (1/2, 1) to minimize variance, per Wang et al.
type THE struct {
	epsilon float64
	d       int
	b       float64
	theta   float64
	p, q    float64
	src     ldprand.Source
	ones    []int
	n       int
}

// NewTHE returns a thresholded histogram-encoding oracle with the
// variance-optimal threshold found by ternary search over (1/2, 1).
func NewTHE(epsilon float64, d int, src ldprand.Source) *THE {
	checkParams(epsilon, d)
	theta := optimalTheta(epsilon)
	return NewTHEWithThreshold(epsilon, d, theta, src)
}

// NewTHEWithThreshold returns a THE oracle with an explicit threshold,
// for the E2 ablation over θ. The threshold must lie in (0, 1].
func NewTHEWithThreshold(epsilon float64, d int, theta float64, src ldprand.Source) *THE {
	checkParams(epsilon, d)
	if theta <= 0 || theta > 1 {
		panic("freq: THE threshold must be in (0, 1]")
	}
	b := 2 / epsilon
	return &THE{
		epsilon: epsilon,
		d:       d,
		b:       b,
		theta:   theta,
		p:       1 - laplaceCDF(theta-1, b),
		q:       1 - laplaceCDF(theta, b),
		src:     defaultSource(src),
		ones:    make([]int, d),
	}
}

// laplaceCDF is the CDF of Laplace(0, b) at x.
func laplaceCDF(x, b float64) float64 {
	if x < 0 {
		return 0.5 * math.Exp(x/b)
	}
	return 1 - 0.5*math.Exp(-x/b)
}

// optimalTheta minimizes q(1−q)/(p−q)² over θ in (1/2, 1) by ternary
// search; the objective is unimodal there.
func optimalTheta(epsilon float64) float64 {
	b := 2 / epsilon
	objective := func(theta float64) float64 {
		p := 1 - laplaceCDF(theta-1, b)
		q := 1 - laplaceCDF(theta, b)
		den := p - q
		return q * (1 - q) / (den * den)
	}
	lo, hi := 0.5, 1.0
	for i := 0; i < 60; i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if objective(m1) < objective(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	return (lo + hi) / 2
}

// Name implements Oracle.
func (t *THE) Name() string { return "THE" }

// Epsilon implements Oracle.
func (t *THE) Epsilon() float64 { return t.epsilon }

// Domain implements Oracle.
func (t *THE) Domain() int { return t.d }

// Theta returns the threshold in use.
func (t *THE) Theta() float64 { return t.theta }

// Privatize adds Laplace noise to the one-hot encoding of v and
// thresholds it into a bit vector client-side, so only d bits travel.
func (t *THE) Privatize(v int) *bitvec.Vector {
	checkDomain(v, t.d)
	out := bitvec.New(t.d)
	for i := 0; i < t.d; i++ {
		x := ldprand.Laplace(t.src, t.b)
		if i == v {
			x++
		}
		if x > t.theta {
			out.Set(i)
		}
	}
	return out
}

// Aggregate folds one thresholded report into the per-position tallies.
func (t *THE) Aggregate(report *bitvec.Vector) {
	if report.Len() != t.d {
		panic("freq: THE report length mismatch")
	}
	for _, i := range report.Ones() {
		t.ones[i]++
	}
	t.n++
}

// Collect implements Oracle.
func (t *THE) Collect(v int) { t.Aggregate(t.Privatize(v)) }

// Collected implements Oracle.
func (t *THE) Collected() int { return t.n }

// EstimateCounts implements Oracle.
func (t *THE) EstimateCounts() []float64 {
	out := make([]float64, t.d)
	den := t.p - t.q
	for v, c := range t.ones {
		out[v] = (float64(c) - float64(t.n)*t.q) / den
	}
	return out
}

// TheoreticalVariance implements Oracle: n·q(1−q)/(p−q)².
func (t *THE) TheoreticalVariance(n int) float64 {
	den := t.p - t.q
	return float64(n) * t.q * (1 - t.q) / (den * den)
}

// ReportBits implements Oracle: one bit per domain value.
func (t *THE) ReportBits() int { return t.d }

// Reset implements Oracle.
func (t *THE) Reset() {
	for i := range t.ones {
		t.ones[i] = 0
	}
	t.n = 0
}

// Merge implements Oracle: per-position tallies add. The thresholds
// must match, since θ determines the (p, q) debiasing constants.
func (t *THE) Merge(other Oracle) error {
	o, ok := other.(*THE)
	if !ok {
		return mergeTypeError(t, other)
	}
	if o.d != t.d || o.epsilon != t.epsilon || o.theta != t.theta {
		return mergeParamError(t.Name())
	}
	for i, c := range o.ones {
		t.ones[i] += c
	}
	t.n += o.n
	return nil
}

// Snapshot implements Oracle.
func (t *THE) Snapshot() Oracle {
	c := *t
	c.ones = append([]int(nil), t.ones...)
	return &c
}

// theState is the serialized aggregate of a THE oracle. θ is carried
// (and must match on restore) because it determines the (p, q)
// debiasing constants; p and q themselves are derived, not stored.
type theState struct {
	V         int     `json:"v,omitempty"` // 0 = current format; see checkStateVersion
	Mechanism string  `json:"mechanism"`
	Epsilon   float64 `json:"epsilon"`
	Domain    int     `json:"domain"`
	Theta     float64 `json:"theta"`
	N         int     `json:"n"`
	Ones      []int   `json:"ones"`
}

// MarshalState implements Oracle.
func (t *THE) MarshalState() ([]byte, error) {
	return json.Marshal(theState{
		Mechanism: t.Name(), Epsilon: t.epsilon, Domain: t.d,
		Theta: t.theta, N: t.n, Ones: t.ones,
	})
}

// UnmarshalState implements Oracle.
func (t *THE) UnmarshalState(data []byte) error {
	var st theState
	if err := json.Unmarshal(data, &st); err != nil {
		return stateDecodeError(t.Name(), err)
	}
	return t.applyState(st)
}

// applyState validates a decoded state (shared by the JSON and binary
// codecs) and installs it.
func (t *THE) applyState(st theState) error {
	if err := checkStateVersion(t.Name(), st.V); err != nil {
		return err
	}
	if st.Mechanism != t.Name() || st.Epsilon != t.epsilon || st.Domain != t.d ||
		st.Theta != t.theta {
		return stateParamError(t.Name())
	}
	if err := checkStateShape(t.Name(), st.N, len(st.Ones), t.d); err != nil {
		return err
	}
	for _, c := range st.Ones {
		if c < 0 || c > st.N {
			return stateShapeError(t.Name())
		}
	}
	copy(t.ones, st.Ones)
	t.n = st.N
	return nil
}
