package freq

import (
	"encoding/json"
	"math"

	"repro/internal/ldprand"
	"repro/internal/transform"
)

// HRR is Hadamard randomized response, the Fourier-spreading idea behind
// Apple's HCMS (§1.2(2)): the client picks a uniformly random Hadamard
// coefficient index j, computes the single ±1 entry H[j, v] of its
// value's column, and flips it with probability 1/(e^ε+1). The server
// averages reports into an estimated Fourier spectrum and inverts with
// one fast Walsh–Hadamard transform. The payload is a single bit.
type HRR struct {
	epsilon float64
	d       int // logical domain size
	dd      int // padded power-of-two transform size
	p       float64
	src     ldprand.Source
	coefSum []float64 // per-index sum of debiased ±1 reports
	n       int
}

// HRRReport is the wire format of one Hadamard randomized-response
// report: a coefficient index and a (possibly flipped) sign.
type HRRReport struct {
	Index int
	Sign  int8 // +1 or −1
}

// NewHRR returns a Hadamard randomized-response oracle.
func NewHRR(epsilon float64, d int, src ldprand.Source) *HRR {
	checkParams(epsilon, d)
	dd := transform.NextPow2(d)
	return &HRR{
		epsilon: epsilon,
		d:       d,
		dd:      dd,
		p:       math.Exp(epsilon) / (math.Exp(epsilon) + 1),
		src:     defaultSource(src),
		coefSum: make([]float64, dd),
	}
}

// Name implements Oracle.
func (h *HRR) Name() string { return "HRR" }

// Epsilon implements Oracle.
func (h *HRR) Epsilon() float64 { return h.epsilon }

// Domain implements Oracle.
func (h *HRR) Domain() int { return h.d }

// PaddedDomain returns the power-of-two transform size in use.
func (h *HRR) PaddedDomain() int { return h.dd }

// Privatize picks a random coefficient index and reports the perturbed
// Hadamard entry of the client's value.
func (h *HRR) Privatize(v int) HRRReport {
	checkDomain(v, h.d)
	j := ldprand.Intn(h.src, h.dd)
	sign := int8(1)
	if transform.Entry(j, v) < 0 {
		sign = -1
	}
	if !ldprand.Bernoulli(h.src, h.p) {
		sign = -sign
	}
	return HRRReport{Index: j, Sign: sign}
}

// Aggregate debiases one report (divide by 2p−1) and accumulates it into
// the coefficient sums.
func (h *HRR) Aggregate(r HRRReport) {
	if r.Index < 0 || r.Index >= h.dd {
		panic("freq: HRR report index out of range")
	}
	if r.Sign != 1 && r.Sign != -1 {
		panic("freq: HRR report sign must be ±1")
	}
	h.coefSum[r.Index] += float64(r.Sign) / (2*h.p - 1)
	h.n++
}

// Collect implements Oracle.
func (h *HRR) Collect(v int) { h.Aggregate(h.Privatize(v)) }

// Collected implements Oracle.
func (h *HRR) Collected() int { return h.n }

// EstimateCounts implements Oracle. Each debiased report is an unbiased
// sample of one Fourier coefficient f̂(j) = Σ_v c_v·H[j,v]; averaging
// per index and scaling by dd reconstructs the spectrum, and one inverse
// WHT yields counts.
func (h *HRR) EstimateCounts() []float64 {
	spectrum := make([]float64, h.dd)
	// Each index j was chosen with probability 1/dd, so the sum of
	// debiased reports at j estimates n·(1/dd)·f̂(j)·dd/n ... more
	// directly: E[sum_j] = (n/dd)·f̂(j), hence f̂(j) ≈ sum_j · dd/n and
	// counts = WHT(f̂)/dd. The n and dd factors cancel into:
	copy(spectrum, h.coefSum)
	transform.WHT(spectrum)
	out := make([]float64, h.d)
	for v := 0; v < h.d; v++ {
		out[v] = spectrum[v]
	}
	return out
}

// TheoreticalVariance implements Oracle. For HRR the per-report variance
// of a count estimate is about ((e^ε+1)/(e^ε−1))²·dd/dd... in the f→0
// approximation it is n·(e^ε+1)²/(e^ε−1)², a constant factor worse than
// OLH/OUE, which is the trade it makes for 1-bit reports.
func (h *HRR) TheoreticalVariance(n int) float64 {
	expE := math.Exp(h.epsilon)
	r := (expE + 1) / (expE - 1)
	return float64(n) * r * r
}

// ReportBits implements Oracle: the sign bit plus the coefficient index.
func (h *HRR) ReportBits() int { return 1 + bitsFor(h.dd) }

// Reset implements Oracle.
func (h *HRR) Reset() {
	for i := range h.coefSum {
		h.coefSum[i] = 0
	}
	h.n = 0
}

// Merge implements Oracle: the debiased coefficient sums add.
func (h *HRR) Merge(other Oracle) error {
	o, ok := other.(*HRR)
	if !ok {
		return mergeTypeError(h, other)
	}
	if o.d != h.d || o.epsilon != h.epsilon {
		return mergeParamError(h.Name())
	}
	for i, x := range o.coefSum {
		h.coefSum[i] += x
	}
	h.n += o.n
	return nil
}

// Snapshot implements Oracle.
func (h *HRR) Snapshot() Oracle {
	c := *h
	c.coefSum = append([]float64(nil), h.coefSum...)
	return &c
}

// hrrState is the serialized aggregate of an HRR oracle. The
// coefficient sums run over the padded power-of-two domain, which is
// derived from the logical domain and therefore not stored separately.
type hrrState struct {
	V         int       `json:"v,omitempty"` // 0 = current format; see checkStateVersion
	Mechanism string    `json:"mechanism"`
	Epsilon   float64   `json:"epsilon"`
	Domain    int       `json:"domain"`
	N         int       `json:"n"`
	CoefSum   []float64 `json:"coef_sum"`
}

// MarshalState implements Oracle.
func (h *HRR) MarshalState() ([]byte, error) {
	return json.Marshal(hrrState{
		Mechanism: h.Name(), Epsilon: h.epsilon, Domain: h.d, N: h.n, CoefSum: h.coefSum,
	})
}

// UnmarshalState implements Oracle.
func (h *HRR) UnmarshalState(data []byte) error {
	var st hrrState
	if err := json.Unmarshal(data, &st); err != nil {
		return stateDecodeError(h.Name(), err)
	}
	return h.applyState(st)
}

// applyState validates a decoded state (shared by the JSON and binary
// codecs) and installs it.
func (h *HRR) applyState(st hrrState) error {
	if err := checkStateVersion(h.Name(), st.V); err != nil {
		return err
	}
	if st.Mechanism != h.Name() || st.Epsilon != h.epsilon || st.Domain != h.d {
		return stateParamError(h.Name())
	}
	if err := checkStateShape(h.Name(), st.N, len(st.CoefSum), h.dd); err != nil {
		return err
	}
	copy(h.coefSum, st.CoefSum)
	h.n = st.N
	return nil
}
