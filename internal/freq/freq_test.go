package freq

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ldprand"
)

// runProtocol feeds values drawn from dist (counts per domain value) to
// the oracle and returns estimated counts.
func runProtocol(o Oracle, truth []int) []float64 {
	for v, c := range truth {
		for i := 0; i < c; i++ {
			o.Collect(v)
		}
	}
	return o.EstimateCounts()
}

// skewedTruth builds a deterministic skewed distribution over d values
// totalling n.
func skewedTruth(d, n int) []int {
	truth := make([]int, d)
	remaining := n
	for v := 0; v < d-1 && remaining > 0; v++ {
		c := remaining / 3
		truth[v] = c
		remaining -= c
	}
	truth[d-1] += remaining
	return truth
}

func totalOf(truth []int) int {
	t := 0
	for _, c := range truth {
		t += c
	}
	return t
}

func TestAllOraclesUnbiased(t *testing.T) {
	const d, n = 16, 60000
	const eps = 2.0
	truth := skewedTruth(d, n)
	for _, m := range Mechanisms() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			o := m.Build(Config{Epsilon: eps, Domain: d, Source: ldprand.NewSplitMix64(42)})
			est := runProtocol(o, truth)
			if o.Collected() != n {
				t.Fatalf("Collected=%d want %d", o.Collected(), n)
			}
			// Tolerance: 5 standard deviations of the analytic estimator.
			tol := 5 * math.Sqrt(o.TheoreticalVariance(n))
			// Histogram encodings and HRR have slightly different
			// constants at high frequency; allow a little slack.
			tol = math.Max(tol, 0.02*float64(n))
			for v := range truth {
				if diff := math.Abs(est[v] - float64(truth[v])); diff > tol {
					t.Errorf("value %d: estimate %.1f truth %d (|diff| %.1f > tol %.1f)",
						v, est[v], truth[v], diff, tol)
				}
			}
		})
	}
}

func TestEstimatesSumNearN(t *testing.T) {
	// Unbiased count estimates should total roughly n.
	const d, n = 8, 40000
	truth := skewedTruth(d, n)
	for _, m := range Mechanisms() {
		o := m.Build(Config{Epsilon: 1.5, Domain: d, Source: ldprand.NewSplitMix64(7)})
		est := runProtocol(o, truth)
		var sum float64
		for _, e := range est {
			sum += e
		}
		if math.Abs(sum-float64(n)) > 0.1*float64(n) {
			t.Errorf("%s: estimates sum %.0f, want about %d", o.Name(), sum, n)
		}
	}
}

func TestEmpiricalVarianceMatchesTheory(t *testing.T) {
	// For a low-frequency item (count 0), the empirical squared error
	// averaged over trials should be close to TheoreticalVariance(n).
	// This is the E2 "analysis matches measurement" check in miniature.
	const d, n, trials = 32, 4000, 30
	for _, m := range Mechanisms() {
		if m.Name == "HRR" {
			continue // HRR variance is checked with its own constant below
		}
		o := m.Build(Config{Epsilon: 1.0, Domain: d, Source: ldprand.NewSplitMix64(99)})
		var sqErr float64
		for trial := 0; trial < trials; trial++ {
			o.Reset()
			for i := 0; i < n; i++ {
				o.Collect(1) // value 0 never occurs
			}
			est := o.EstimateCounts()
			sqErr += est[0] * est[0]
		}
		empirical := sqErr / trials
		theory := o.TheoreticalVariance(n)
		ratio := empirical / theory
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: empirical var %.1f vs theory %.1f (ratio %.2f)",
				o.Name(), empirical, theory, ratio)
		}
	}
}

func TestOUEBeatsSUEVariance(t *testing.T) {
	// The OUE ablation: optimized probabilities must strictly lower the
	// analytic variance at every epsilon.
	for _, eps := range []float64{0.5, 1, 2, 4} {
		sue := NewSUE(eps, 10, ldprand.NewSplitMix64(1))
		oue := NewOUE(eps, 10, ldprand.NewSplitMix64(1))
		if oue.TheoreticalVariance(1000) >= sue.TheoreticalVariance(1000) {
			t.Errorf("eps=%v: OUE variance %.2f not below SUE %.2f", eps,
				oue.TheoreticalVariance(1000), sue.TheoreticalVariance(1000))
		}
	}
}

func TestOLHMatchesOUEVariance(t *testing.T) {
	// Wang et al.: OLH and OUE have (asymptotically) the same variance
	// 4e^ε/(e^ε−1)²·n. With the integer ceiling on g they differ by a
	// small factor only.
	for _, eps := range []float64{1, 2, 3} {
		oue := NewOUE(eps, 100, nil)
		olh := NewOLH(eps, 100, nil)
		r := olh.TheoreticalVariance(1000) / oue.TheoreticalVariance(1000)
		if r < 0.8 || r > 1.3 {
			t.Errorf("eps=%v: OLH/OUE variance ratio %.3f outside [0.8,1.3]", eps, r)
		}
	}
}

func TestGRRCrossover(t *testing.T) {
	// GRR beats OLH while d < 3e^ε + 2 and loses above (E3).
	eps := 1.0
	crossover := 3*math.Exp(eps) + 2
	small := int(crossover) - 3
	large := int(crossover) + 10
	if small < 2 {
		small = 2
	}
	grrS := NewGRR(eps, small, nil)
	olhS := NewOLH(eps, small, nil)
	if grrS.TheoreticalVariance(1000) >= olhS.TheoreticalVariance(1000)*1.05 {
		t.Errorf("d=%d below crossover: GRR %.1f should not exceed OLH %.1f",
			small, grrS.TheoreticalVariance(1000), olhS.TheoreticalVariance(1000))
	}
	grrL := NewGRR(eps, large, nil)
	olhL := NewOLH(eps, large, nil)
	if grrL.TheoreticalVariance(1000) <= olhL.TheoreticalVariance(1000) {
		t.Errorf("d=%d above crossover: GRR %.1f should exceed OLH %.1f",
			large, grrL.TheoreticalVariance(1000), olhL.TheoreticalVariance(1000))
	}
}

func TestGRRPrivatizeCalibration(t *testing.T) {
	const eps, d, n = 1.0, 5, 200000
	g := NewGRR(eps, d, ldprand.NewSplitMix64(3))
	keep := 0
	for i := 0; i < n; i++ {
		if g.Privatize(2) == 2 {
			keep++
		}
	}
	got := float64(keep) / n
	if math.Abs(got-g.P()) > 0.005 {
		t.Errorf("GRR keep rate %.4f want %.4f", got, g.P())
	}
}

func TestGRRLiesUniform(t *testing.T) {
	const eps, d, n = 0.5, 4, 300000
	g := NewGRR(eps, d, ldprand.NewSplitMix64(5))
	counts := make([]int, d)
	for i := 0; i < n; i++ {
		counts[g.Privatize(0)]++
	}
	// Each lie value should appear with probability q.
	for v := 1; v < d; v++ {
		got := float64(counts[v]) / n
		if math.Abs(got-g.Q()) > 0.005 {
			t.Errorf("lie value %d rate %.4f want %.4f", v, got, g.Q())
		}
	}
}

func TestUEBitCalibration(t *testing.T) {
	const eps, d, n = 2.0, 6, 100000
	u := NewOUE(eps, d, ldprand.NewSplitMix64(9))
	onesTrue, onesFalse := 0, 0
	for i := 0; i < n; i++ {
		r := u.Privatize(3)
		if r.Get(3) {
			onesTrue++
		}
		if r.Get(0) {
			onesFalse++
		}
	}
	if got := float64(onesTrue) / n; math.Abs(got-u.P()) > 0.01 {
		t.Errorf("true-bit keep rate %.4f want %.4f", got, u.P())
	}
	if got := float64(onesFalse) / n; math.Abs(got-u.Q()) > 0.01 {
		t.Errorf("false-bit flip rate %.4f want %.4f", got, u.Q())
	}
}

func TestUECustomProbabilitiesBudgetCheck(t *testing.T) {
	// p=0.75, q=0.25 needs ε = ln(9) ≈ 2.197.
	NewUE(2.2, 4, 0.75, 0.25, nil) // must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: probabilities exceed budget")
		}
	}()
	NewUE(2.0, 4, 0.75, 0.25, nil)
}

func TestTHEThresholdOptimal(t *testing.T) {
	// The auto-selected threshold should do at least as well as the
	// endpoints of the search interval.
	eps := 1.0
	auto := NewTHE(eps, 10, nil)
	if auto.Theta() <= 0.5 || auto.Theta() >= 1.0 {
		t.Fatalf("optimal theta %.3f outside (0.5, 1)", auto.Theta())
	}
	for _, theta := range []float64{0.55, 0.95} {
		fixed := NewTHEWithThreshold(eps, 10, theta, nil)
		if auto.TheoreticalVariance(1000) > fixed.TheoreticalVariance(1000)*1.001 {
			t.Errorf("auto theta %.3f var %.2f worse than theta=%.2f var %.2f",
				auto.Theta(), auto.TheoreticalVariance(1000), theta, fixed.TheoreticalVariance(1000))
		}
	}
}

func TestLaplaceCDF(t *testing.T) {
	if got := laplaceCDF(0, 1); got != 0.5 {
		t.Errorf("CDF(0)=%v want 0.5", got)
	}
	if got := laplaceCDF(100, 1); got < 0.999 {
		t.Errorf("CDF(100)=%v want about 1", got)
	}
	if got := laplaceCDF(-100, 1); got > 0.001 {
		t.Errorf("CDF(-100)=%v want about 0", got)
	}
	// Monotone.
	prev := -1.0
	for x := -5.0; x <= 5; x += 0.25 {
		c := laplaceCDF(x, 2)
		if c < prev {
			t.Fatalf("CDF not monotone at %v", x)
		}
		prev = c
	}
}

func TestLHSupportProbability(t *testing.T) {
	// A report generated from value v must support v with probability
	// p, and support an unrelated value with probability about 1/g.
	const eps, d, n = 1.0, 50, 50000
	l := NewOLH(eps, d, ldprand.NewSplitMix64(21))
	supportTrue, supportOther := 0, 0
	for i := 0; i < n; i++ {
		r := l.Privatize(7)
		if hashSupports(l, r, 7) {
			supportTrue++
		}
		if hashSupports(l, r, 33) {
			supportOther++
		}
	}
	pTrue := float64(supportTrue) / n
	pOther := float64(supportOther) / n
	if math.Abs(pTrue-l.p) > 0.01 {
		t.Errorf("true support rate %.4f want %.4f", pTrue, l.p)
	}
	if math.Abs(pOther-1/float64(l.G())) > 0.01 {
		t.Errorf("other support rate %.4f want %.4f", pOther, 1/float64(l.G()))
	}
}

// hashSupports replays the server-side support rule for one report.
func hashSupports(l *LH, r LHReport, v int) bool {
	tmp := newLH("tmp", l.Epsilon(), l.Domain(), l.G(), ldprand.NewSplitMix64(0))
	tmp.Aggregate(r)
	return tmp.support[v] > 0
}

func TestHRRReportsValid(t *testing.T) {
	h := NewHRR(1.0, 10, ldprand.NewSplitMix64(12))
	for i := 0; i < 1000; i++ {
		r := h.Privatize(i % 10)
		if r.Index < 0 || r.Index >= h.PaddedDomain() {
			t.Fatalf("index %d out of range", r.Index)
		}
		if r.Sign != 1 && r.Sign != -1 {
			t.Fatalf("sign %d invalid", r.Sign)
		}
	}
}

func TestHRRSignFlipRate(t *testing.T) {
	const eps, n = 1.5, 100000
	h := NewHRR(eps, 4, ldprand.NewSplitMix64(31))
	// With v=0, the true entry H[j,0] = +1 for all j, so the reported
	// sign is +1 exactly when not flipped.
	plus := 0
	for i := 0; i < n; i++ {
		if h.Privatize(0).Sign == 1 {
			plus++
		}
	}
	got := float64(plus) / n
	want := math.Exp(eps) / (math.Exp(eps) + 1)
	if math.Abs(got-want) > 0.005 {
		t.Errorf("keep rate %.4f want %.4f", got, want)
	}
}

func TestResetClearsState(t *testing.T) {
	for _, m := range Mechanisms() {
		o := m.Build(Config{Epsilon: 1, Domain: 4, Source: ldprand.NewSplitMix64(2)})
		o.Collect(1)
		o.Collect(2)
		o.Reset()
		if o.Collected() != 0 {
			t.Errorf("%s: Collected=%d after Reset", o.Name(), o.Collected())
		}
		for v, c := range o.EstimateCounts() {
			if c != 0 {
				t.Errorf("%s: estimate[%d]=%v after Reset", o.Name(), v, c)
			}
		}
	}
}

func TestCollectPanicsOutOfDomain(t *testing.T) {
	for _, m := range Mechanisms() {
		o := m.Build(Config{Epsilon: 1, Domain: 4, Source: ldprand.NewSplitMix64(2)})
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: out-of-domain Collect did not panic", o.Name())
				}
			}()
			o.Collect(4)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: negative Collect did not panic", o.Name())
				}
			}()
			o.Collect(-1)
		}()
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGRR(0, 4, nil) },
		func() { NewGRR(-1, 4, nil) },
		func() { NewGRR(math.NaN(), 4, nil) },
		func() { NewGRR(1, 1, nil) },
		func() { NewOUE(1, 0, nil) },
		func() { NewOLH(math.Inf(1), 4, nil) },
		func() { NewLH(1, 4, 1, nil) },
		func() { NewTHEWithThreshold(1, 4, 0, nil) },
		func() { NewTHEWithThreshold(1, 4, 1.5, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected constructor panic")
				}
			}()
			fn()
		}()
	}
}

func TestBinaryRRProportion(t *testing.T) {
	const n = 50000
	b := NewBinaryRR(1.0, ldprand.NewSplitMix64(77))
	trueOnes := n / 4
	for i := 0; i < n; i++ {
		v := 0
		if i < trueOnes {
			v = 1
		}
		b.Collect(v)
	}
	est, ci := b.EstimateProportion(0.05)
	if math.Abs(est-0.25) > 0.03 {
		t.Errorf("proportion estimate %.3f want about 0.25", est)
	}
	if ci <= 0 || ci > 0.1 {
		t.Errorf("CI half-width %.4f implausible", ci)
	}
	if math.Abs(est-0.25) > 3*ci {
		t.Errorf("estimate off by more than 3 CI widths")
	}
}

func TestEstimateFrequencies(t *testing.T) {
	f := EstimateFrequencies([]float64{10, 30}, 40)
	if f[0] != 0.25 || f[1] != 0.75 {
		t.Fatalf("frequencies %v", f)
	}
	z := EstimateFrequencies([]float64{1, 2}, 0)
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("n=0 frequencies %v", z)
	}
}

func TestClampToSimplexProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		out := ClampToSimplex(raw)
		var sum float64
		for _, x := range out {
			if x < 0 || x > 1+1e-9 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReportBits(t *testing.T) {
	d := 1024
	eps := 1.0
	if got := NewGRR(eps, d, nil).ReportBits(); got != 10 {
		t.Errorf("GRR bits=%d want 10", got)
	}
	if got := NewOUE(eps, d, nil).ReportBits(); got != d {
		t.Errorf("OUE bits=%d want %d", got, d)
	}
	if got := NewSHE(eps, d, nil).ReportBits(); got != 64*d {
		t.Errorf("SHE bits=%d want %d", got, 64*d)
	}
	if got := NewBLH(eps, d, nil).ReportBits(); got != 1 {
		t.Errorf("BLH bits=%d want 1", got)
	}
	hrr := NewHRR(eps, d, nil)
	if got := hrr.ReportBits(); got != 11 {
		t.Errorf("HRR bits=%d want 11", got)
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for d, want := range cases {
		if got := bitsFor(d); got != want {
			t.Errorf("bitsFor(%d)=%d want %d", d, got, want)
		}
	}
}
