package freq

import (
	"encoding/json"
	"math"

	"repro/internal/hashutil"
	"repro/internal/ldprand"
)

// LH is the local-hashing family: the client draws a public random hash
// function h (identified by a seed) from the domain into [g], applies
// generalized randomized response over the g buckets to h(v), and sends
// (seed, bucket). The server "supports" every candidate value that the
// reported hash maps into the reported bucket.
//
// Binary local hashing (BLH) fixes g = 2 (one payload bit, the
// Bassily–Smith construction); optimized local hashing (OLH, Wang et
// al.) uses g = ⌈e^ε⌉ + 1, matching OUE's variance with only
// log₂(g)-bit payloads. The seed doubles as the per-user randomness that
// Apple/Microsoft-style deployments memoize.
type LH struct {
	name    string
	epsilon float64
	d       int
	g       int     // hash range
	p       float64 // GRR keep-probability over [g]
	src     ldprand.Source
	support []float64 // per-value support tallies
	n       int
}

// LHReport is the wire format of one local-hashing report.
type LHReport struct {
	Seed   uint64 // identifies the hash function the client drew
	Bucket int    // GRR-perturbed h(v) in [0, g)
}

// NewOLH returns the optimized local hashing oracle with g = ⌈e^ε⌉+1.
func NewOLH(epsilon float64, d int, src ldprand.Source) *LH {
	checkParams(epsilon, d)
	g := int(math.Ceil(math.Exp(epsilon))) + 1
	if g < 2 {
		g = 2
	}
	return newLH("OLH", epsilon, d, g, src)
}

// NewBLH returns binary local hashing (g = 2).
func NewBLH(epsilon float64, d int, src ldprand.Source) *LH {
	checkParams(epsilon, d)
	return newLH("BLH", epsilon, d, 2, src)
}

// NewLH returns a local-hashing oracle with an explicit hash range g,
// for the E3 ablation over g. g must be at least 2.
func NewLH(epsilon float64, d, g int, src ldprand.Source) *LH {
	checkParams(epsilon, d)
	if g < 2 {
		panic("freq: LH hash range must be at least 2")
	}
	return newLH("LH", epsilon, d, g, src)
}

func newLH(name string, epsilon float64, d, g int, src ldprand.Source) *LH {
	expE := math.Exp(epsilon)
	return &LH{
		name:    name,
		epsilon: epsilon,
		d:       d,
		g:       g,
		p:       expE / (expE + float64(g) - 1),
		src:     defaultSource(src),
		support: make([]float64, d),
	}
}

// Name implements Oracle.
func (l *LH) Name() string { return l.name }

// Epsilon implements Oracle.
func (l *LH) Epsilon() float64 { return l.epsilon }

// Domain implements Oracle.
func (l *LH) Domain() int { return l.d }

// G returns the hash range.
func (l *LH) G() int { return l.g }

// Privatize draws a fresh hash seed, hashes v into [g] and perturbs the
// bucket with GRR over [g].
func (l *LH) Privatize(v int) LHReport {
	checkDomain(v, l.d)
	seed := l.src.Uint64()
	bucket := hashutil.HashIntRange(seed, v, l.g)
	if !ldprand.Bernoulli(l.src, l.p) {
		other := ldprand.Intn(l.src, l.g-1)
		if other >= bucket {
			other++
		}
		bucket = other
	}
	return LHReport{Seed: seed, Bucket: bucket}
}

// Aggregate adds support to every domain value consistent with the
// report. This is the O(d) step of local hashing; the client side is
// O(1).
func (l *LH) Aggregate(r LHReport) {
	if r.Bucket < 0 || r.Bucket >= l.g {
		panic("freq: LH report bucket out of range")
	}
	for v := 0; v < l.d; v++ {
		if hashutil.HashIntRange(r.Seed, v, l.g) == r.Bucket {
			l.support[v]++
		}
	}
	l.n++
}

// Collect implements Oracle.
func (l *LH) Collect(v int) { l.Aggregate(l.Privatize(v)) }

// Collected implements Oracle.
func (l *LH) Collected() int { return l.n }

// EstimateCounts implements Oracle. A value's report supports it with
// probability p* = p if true, and q* = 1/g on average otherwise, giving
// ĉ_v = (support_v − n/g) / (p − 1/g).
func (l *LH) EstimateCounts() []float64 {
	out := make([]float64, l.d)
	q := 1 / float64(l.g)
	den := l.p - q
	for v, s := range l.support {
		out[v] = (s - float64(l.n)*q) / den
	}
	return out
}

// TheoreticalVariance implements Oracle. In the f→0 approximation,
// Var = n · q*(1−q*)/(p*−q*)² with q* = 1/g; for OLH's g = e^ε+1 this
// becomes n·4e^ε/(e^ε−1)², matching OUE.
func (l *LH) TheoreticalVariance(n int) float64 {
	q := 1 / float64(l.g)
	den := l.p - q
	return float64(n) * q * (1 - q) / (den * den)
}

// ReportBits implements Oracle: a 64-bit seed plus the bucket. The seed
// can be elided when derived from a shared per-user secret, so the
// payload column in E13 reports both; here we count the payload bits
// only, matching how the literature compares communication.
func (l *LH) ReportBits() int { return bitsFor(l.g) }

// Reset implements Oracle.
func (l *LH) Reset() {
	for i := range l.support {
		l.support[i] = 0
	}
	l.n = 0
}

// Merge implements Oracle: support tallies add component-wise. The
// hash range g must match (it fixes the debiasing constants), and the
// name must match so BLH and an explicit g=2 LH stay distinct.
func (l *LH) Merge(other Oracle) error {
	o, ok := other.(*LH)
	if !ok {
		return mergeTypeError(l, other)
	}
	if o.name != l.name || o.d != l.d || o.g != l.g || o.epsilon != l.epsilon {
		return mergeParamError(l.name)
	}
	for i, s := range o.support {
		l.support[i] += s
	}
	l.n += o.n
	return nil
}

// Snapshot implements Oracle.
func (l *LH) Snapshot() Oracle {
	c := *l
	c.support = append([]float64(nil), l.support...)
	return &c
}

// lhState is the serialized aggregate of a local-hashing oracle. The
// hash range g is carried (it fixes the debiasing constants) and the
// name distinguishes BLH from an explicit g=2 LH, mirroring Merge.
type lhState struct {
	V         int       `json:"v,omitempty"` // 0 = current format; see checkStateVersion
	Mechanism string    `json:"mechanism"`
	Epsilon   float64   `json:"epsilon"`
	Domain    int       `json:"domain"`
	G         int       `json:"g"`
	N         int       `json:"n"`
	Support   []float64 `json:"support"`
}

// MarshalState implements Oracle.
func (l *LH) MarshalState() ([]byte, error) {
	return json.Marshal(lhState{
		Mechanism: l.name, Epsilon: l.epsilon, Domain: l.d,
		G: l.g, N: l.n, Support: l.support,
	})
}

// UnmarshalState implements Oracle.
func (l *LH) UnmarshalState(data []byte) error {
	var st lhState
	if err := json.Unmarshal(data, &st); err != nil {
		return stateDecodeError(l.name, err)
	}
	return l.applyState(st)
}

// applyState validates a decoded state (shared by the JSON and binary
// codecs) and installs it.
func (l *LH) applyState(st lhState) error {
	if err := checkStateVersion(l.name, st.V); err != nil {
		return err
	}
	if st.Mechanism != l.name || st.Epsilon != l.epsilon || st.Domain != l.d || st.G != l.g {
		return stateParamError(l.name)
	}
	if err := checkStateShape(l.name, st.N, len(st.Support), l.d); err != nil {
		return err
	}
	copy(l.support, st.Support)
	l.n = st.N
	return nil
}
