package freq

import (
	"math"
	"testing"

	"repro/internal/ldprand"
)

// binaryOracles builds one oracle of every mechanism, fed with a
// deterministic report stream so the states are non-trivial.
func binaryOracles(t *testing.T, fill int) []Oracle {
	t.Helper()
	const d = 37
	var out []Oracle
	for _, m := range Mechanisms() {
		src := ldprand.NewSplitMix64(0xC0FFEE ^ uint64(len(out)))
		o := m.Build(Config{Epsilon: 1.25, Domain: d, Source: src})
		for i := 0; i < fill; i++ {
			o.Collect(i % d)
		}
		out = append(out, o)
	}
	src := ldprand.NewSplitMix64(0xBEEF)
	rr := NewBinaryRR(1.25, src)
	for i := 0; i < fill; i++ {
		rr.Collect(i % 2)
	}
	out = append(out, rr)
	return out
}

// sameCounts compares two estimate vectors bit for bit.
func sameCounts(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestBinaryStateRoundTrip checks that for every mechanism, JSON →
// restore and binary → restore produce bit-identical estimates, and
// that a binary ⟷ JSON re-encode is a fixed point.
func TestBinaryStateRoundTrip(t *testing.T) {
	for _, o := range binaryOracles(t, 500) {
		bs, ok := o.(BinaryStater)
		if !ok {
			t.Fatalf("%s (%T) does not implement BinaryStater", o.Name(), o)
		}
		want := o.EstimateCounts()
		js, err := o.MarshalState()
		if err != nil {
			t.Fatalf("%s: MarshalState: %v", o.Name(), err)
		}
		bin, err := bs.MarshalStateBinary()
		if err != nil {
			t.Fatalf("%s: MarshalStateBinary: %v", o.Name(), err)
		}
		if len(bin) >= len(js) {
			t.Errorf("%s: binary state %dB not smaller than JSON %dB", o.Name(), len(bin), len(js))
		}

		// Binary restore onto a fresh oracle of the same configuration.
		fresh := freshLike(t, o)
		if err := fresh.(BinaryStater).UnmarshalStateBinary(bin); err != nil {
			t.Fatalf("%s: UnmarshalStateBinary: %v", o.Name(), err)
		}
		if !sameCounts(want, fresh.EstimateCounts()) {
			t.Errorf("%s: binary restore diverged from source estimates", o.Name())
		}
		if fresh.Collected() != o.Collected() {
			t.Errorf("%s: binary restore Collected = %d, want %d", o.Name(), fresh.Collected(), o.Collected())
		}

		// Fixed point: binary-restored state re-marshals to the same
		// JSON and the same binary as the original.
		js2, err := fresh.MarshalState()
		if err != nil {
			t.Fatalf("%s: re-MarshalState: %v", o.Name(), err)
		}
		if string(js2) != string(js) {
			t.Errorf("%s: binary→JSON re-encode not a fixed point", o.Name())
		}
		bin2, err := fresh.(BinaryStater).MarshalStateBinary()
		if err != nil {
			t.Fatalf("%s: re-MarshalStateBinary: %v", o.Name(), err)
		}
		if string(bin2) != string(bin) {
			t.Errorf("%s: binary re-encode not a fixed point", o.Name())
		}

		// JSON restore must agree with the binary restore.
		fresh2 := freshLike(t, o)
		if err := fresh2.UnmarshalState(js); err != nil {
			t.Fatalf("%s: UnmarshalState: %v", o.Name(), err)
		}
		if !sameCounts(want, fresh2.EstimateCounts()) {
			t.Errorf("%s: JSON restore diverged from source estimates", o.Name())
		}
	}
}

// freshLike builds an empty oracle with the same mechanism and
// parameters as o.
func freshLike(t *testing.T, o Oracle) Oracle {
	t.Helper()
	if rr, ok := o.(BinaryRR); ok {
		return NewBinaryRR(rr.Epsilon(), nil)
	}
	for _, m := range Mechanisms() {
		if m.Name == o.Name() {
			return m.Build(Config{Epsilon: o.Epsilon(), Domain: o.Domain()})
		}
	}
	t.Fatalf("no builder for %s", o.Name())
	return nil
}

// TestBinaryStateRefusesGarbage checks that truncated, bit-flipped and
// cross-mechanism payloads are refused without panicking, and that the
// receiver keeps its state.
func TestBinaryStateRefusesGarbage(t *testing.T) {
	oracles := binaryOracles(t, 100)
	for _, o := range oracles {
		bs := o.(BinaryStater)
		bin, err := bs.MarshalStateBinary()
		if err != nil {
			t.Fatalf("%s: MarshalStateBinary: %v", o.Name(), err)
		}
		want := o.EstimateCounts()

		// Every truncation must be refused.
		for cut := 0; cut < len(bin); cut += 1 + len(bin)/64 {
			if err := bs.UnmarshalStateBinary(bin[:cut]); err == nil {
				t.Errorf("%s: truncation at %d accepted", o.Name(), cut)
			}
		}
		// An unknown version tag must be refused before the payload is
		// read.
		bad := append([]byte(nil), bin...)
		bad[0] = 99
		if err := bs.UnmarshalStateBinary(bad); err == nil {
			t.Errorf("%s: future version accepted", o.Name())
		}
		if !sameCounts(want, o.EstimateCounts()) {
			t.Errorf("%s: failed restore mutated the receiver", o.Name())
		}
	}
	// Cross-mechanism restore: every payload into every other oracle.
	for _, src := range oracles {
		bin, _ := src.(BinaryStater).MarshalStateBinary()
		for _, dst := range oracles {
			if dst.Name() == src.Name() {
				continue
			}
			if err := dst.(BinaryStater).UnmarshalStateBinary(bin); err == nil {
				t.Errorf("%s state accepted by %s", src.Name(), dst.Name())
			}
		}
	}
}
