package freq

// Serialization coverage for every oracle in the registry: state must
// round-trip bit-identically (the property the server checkpoint cycle
// rests on), be stable under re-marshalling, and refuse to restore
// onto an oracle with different parameters or a different mechanism.

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/ldprand"
)

// collectSome drives a few hundred random values through the oracle.
func collectSome(o Oracle, seed uint64, n int) {
	src := ldprand.NewSplitMix64(seed)
	for i := 0; i < n; i++ {
		o.Collect(ldprand.Intn(src, o.Domain()))
	}
}

func TestStateRoundTripAllMechanisms(t *testing.T) {
	cfg := Config{Epsilon: 1.2, Domain: 16}
	for _, m := range Mechanisms() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			o := m.Build(Config{Epsilon: cfg.Epsilon, Domain: cfg.Domain, Source: ldprand.NewSplitMix64(11)})
			collectSome(o, 13, 400)

			state, err := o.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			fresh := m.Build(cfg)
			if err := fresh.UnmarshalState(state); err != nil {
				t.Fatal(err)
			}
			if fresh.Collected() != o.Collected() {
				t.Fatalf("collected %d, want %d", fresh.Collected(), o.Collected())
			}
			// Bit-identical estimates, not approximately equal: restore
			// must reproduce the aggregate exactly.
			if !reflect.DeepEqual(fresh.EstimateCounts(), o.EstimateCounts()) {
				t.Fatal("restored estimates differ from the original")
			}
			// Marshalling the restored oracle reproduces the same bytes.
			again, err := fresh.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(state, again) {
				t.Fatalf("re-marshalled state differs:\n%s\n%s", state, again)
			}
			// The restored oracle is a full citizen: merging the
			// original's snapshot in doubles every tally.
			if err := fresh.Merge(o.Snapshot()); err != nil {
				t.Fatal(err)
			}
			if fresh.Collected() != 2*o.Collected() {
				t.Fatalf("merged collected %d, want %d", fresh.Collected(), 2*o.Collected())
			}
		})
	}
}

func TestStateRoundTripBinaryRR(t *testing.T) {
	b := NewBinaryRR(0.8, ldprand.NewSplitMix64(17))
	collectSome(b, 19, 300)
	state, err := b.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewBinaryRR(0.8, nil)
	if err := fresh.UnmarshalState(state); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.EstimateCounts(), b.EstimateCounts()) {
		t.Fatal("restored estimates differ from the original")
	}
	// BinaryRR state carries the wrapper's "RR" name, so it must not
	// restore into a generic d=2 GRR (and vice versa), mirroring Merge.
	grr := NewGRR(0.8, 2, nil)
	if err := grr.UnmarshalState(state); err == nil {
		t.Fatal("RR state restored into a plain GRR")
	}
	grrState, err := grr.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewBinaryRR(0.8, nil).UnmarshalState(grrState); err == nil {
		t.Fatal("GRR state restored into a BinaryRR")
	}
}

func TestStateRejectsMismatch(t *testing.T) {
	cfg := Config{Epsilon: 1.2, Domain: 16}
	builders := Mechanisms()
	// State from each mechanism must be rejected by every other
	// mechanism (at identical ε and d, the confusable case).
	states := make(map[string][]byte)
	for _, m := range builders {
		o := m.Build(Config{Epsilon: cfg.Epsilon, Domain: cfg.Domain, Source: ldprand.NewSplitMix64(23)})
		collectSome(o, 29, 50)
		st, err := o.MarshalState()
		if err != nil {
			t.Fatal(err)
		}
		states[m.Name] = st
	}
	for _, m := range builders {
		for name, st := range states {
			if name == m.Name {
				continue
			}
			if err := m.Build(cfg).UnmarshalState(st); err == nil {
				t.Errorf("%s accepted %s state", m.Name, name)
			}
		}
	}
}

func TestStateRejectsParamAndShapeChanges(t *testing.T) {
	for _, m := range Mechanisms() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			o := m.Build(Config{Epsilon: 1.2, Domain: 16, Source: ldprand.NewSplitMix64(31)})
			collectSome(o, 37, 50)
			st, err := o.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Build(Config{Epsilon: 0.7, Domain: 16}).UnmarshalState(st); err == nil {
				t.Error("state restored under a different epsilon")
			}
			if err := m.Build(Config{Epsilon: 1.2, Domain: 32}).UnmarshalState(st); err == nil {
				t.Error("state restored under a different domain")
			}
			if err := m.Build(Config{Epsilon: 1.2, Domain: 16}).UnmarshalState([]byte(`{"mechanism":`)); err == nil {
				t.Error("truncated JSON accepted")
			}
			if err := m.Build(Config{Epsilon: 1.2, Domain: 16}).UnmarshalState([]byte(`{}`)); err == nil {
				t.Error("empty state object accepted")
			}
		})
	}
}

// TestStateFailureLeavesOracleUsable pins that a rejected restore does
// not corrupt the receiver: parameter checks run before any tally is
// touched.
func TestStateFailureLeavesOracleUsable(t *testing.T) {
	o := NewGRR(1.0, 8, ldprand.NewSplitMix64(41))
	collectSome(o, 43, 100)
	before := o.EstimateCounts()
	wrong := NewGRR(2.0, 8, nil)
	wrongState, err := wrong.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if err := o.UnmarshalState(wrongState); err == nil {
		t.Fatal("mismatched state accepted")
	}
	if !reflect.DeepEqual(o.EstimateCounts(), before) {
		t.Fatal("failed restore mutated the oracle")
	}
}

// TestStateRejectsUnknownVersion pins the version gate on every
// mechanism: the current format omits the tag (so existing snapshots
// are unchanged), an explicit v=0 tag still restores, and any other
// tag — a blob from a future format revision — is refused instead of
// being reinterpreted field-by-field.
func TestStateRejectsUnknownVersion(t *testing.T) {
	cfg := Config{Epsilon: 1.2, Domain: 16}
	for _, m := range Mechanisms() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			o := m.Build(Config{Epsilon: cfg.Epsilon, Domain: cfg.Domain, Source: ldprand.NewSplitMix64(11)})
			collectSome(o, 13, 100)
			state, err := o.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Contains(state, []byte(`"v":`)) {
				t.Fatalf("current format must omit the version tag: %s", state)
			}
			fresh := m.Build(cfg)
			if err := fresh.UnmarshalState(append([]byte(`{"v":99,`), state[1:]...)); err == nil {
				t.Fatal("restore accepted a version-99 state blob")
			}
			if fresh.Collected() != 0 {
				t.Fatal("failed restore mutated the oracle")
			}
			if err := fresh.UnmarshalState(append([]byte(`{"v":0,`), state[1:]...)); err != nil {
				t.Fatalf("restore rejected an explicit v=0 tag: %v", err)
			}
		})
	}
}
