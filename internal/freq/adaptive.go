package freq

import (
	"math"

	"repro/internal/ldprand"
)

// NewAdaptive returns the variance-optimal oracle for the given
// parameters: GRR while the domain is small (d < 3e^ε + 2, where its
// variance (d−2+e^ε)/(e^ε−1)² beats OUE/OLH's 4e^ε/(e^ε−1)²), and OLH
// above the crossover. This packages the E3 result as the constructor
// a downstream user should reach for by default.
func NewAdaptive(epsilon float64, d int, src ldprand.Source) Oracle {
	checkParams(epsilon, d)
	if float64(d) < 3*math.Exp(epsilon)+2 {
		return NewGRR(epsilon, d, src)
	}
	return NewOLH(epsilon, d, src)
}
