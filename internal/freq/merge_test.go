package freq_test

// Merge-law property tests: for every mechanism in the registry,
// splitting a report stream across k oracles and merging them must be
// indistinguishable from one oracle aggregating the whole stream. This
// is the algebraic fact the sharded server (internal/core) relies on,
// so it is pinned here, driven through the core.Mechanisms() registry
// so any mechanism added there is covered automatically.
//
// The external test package is deliberate: it lets the test reuse the
// core wire path (Privatize/Aggregate envelopes) to feed the exact
// same randomized reports to both sides without an import cycle.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/freq"
	"repro/internal/ldprand"
)

func mergeParams() core.PrivacyParams { return core.PrivacyParams{Epsilon: 1.5, Domain: 16} }

// TestMergeLawAllMechanisms checks Merge(split(reports)) ≡
// aggregate(all reports) on Collected() and EstimateCounts().
func TestMergeLawAllMechanisms(t *testing.T) {
	const n, parts = 3000, 7
	for _, name := range core.Mechanisms() {
		name := name
		t.Run(name, func(t *testing.T) {
			client, err := core.NewOracle(name, mergeParams(), ldprand.NewSplitMix64(11))
			if err != nil {
				t.Fatal(err)
			}
			sequential, err := core.NewOracle(name, mergeParams(), nil)
			if err != nil {
				t.Fatal(err)
			}
			shards := make([]freq.Oracle, parts)
			for i := range shards {
				if shards[i], err = core.NewOracle(name, mergeParams(), nil); err != nil {
					t.Fatal(err)
				}
			}
			src := ldprand.NewSplitMix64(12)
			for i := 0; i < n; i++ {
				v := ldprand.Intn(src, 16)
				env, err := core.Privatize(client, v)
				if err != nil {
					t.Fatal(err)
				}
				// The same envelope goes to the sequential oracle and
				// to one of the split oracles.
				if err := core.Aggregate(sequential, env); err != nil {
					t.Fatal(err)
				}
				if err := core.Aggregate(shards[i%parts], env); err != nil {
					t.Fatal(err)
				}
			}

			merged, err := core.NewOracle(name, mergeParams(), nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range shards {
				if err := merged.Merge(s.Snapshot()); err != nil {
					t.Fatal(err)
				}
			}
			if merged.Collected() != sequential.Collected() {
				t.Fatalf("merged collected %d, sequential %d", merged.Collected(), sequential.Collected())
			}
			got, want := merged.EstimateCounts(), sequential.EstimateCounts()
			for v := range want {
				// Integer-count accumulators are exactly equal; the
				// float accumulators (SHE sums, HRR coefficient sums)
				// may differ by summation order, so allow ulp-scale
				// slack relative to the count magnitude.
				tol := 1e-9 * (1 + math.Abs(want[v]))
				if diff := math.Abs(got[v] - want[v]); diff > tol {
					t.Errorf("value %d: merged %v, sequential %v (diff %g)", v, got[v], want[v], diff)
				}
			}
		})
	}
}

// TestMergeRejectsIncompatible checks that cross-mechanism and
// cross-parameter merges fail rather than silently corrupting tallies.
func TestMergeRejectsIncompatible(t *testing.T) {
	for _, name := range core.Mechanisms() {
		name := name
		t.Run(name, func(t *testing.T) {
			dst, err := core.NewOracle(name, mergeParams(), nil)
			if err != nil {
				t.Fatal(err)
			}
			// Different mechanism.
			otherName := core.MechanismGRR
			if name == core.MechanismGRR {
				otherName = core.MechanismOUE
			}
			other, err := core.NewOracle(otherName, mergeParams(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.Merge(other); err == nil {
				t.Errorf("merged %s into %s", otherName, name)
			}
			// Same mechanism, different epsilon.
			diffEps, err := core.NewOracle(name, core.PrivacyParams{Epsilon: 0.5, Domain: 16}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.Merge(diffEps); err == nil {
				t.Errorf("%s: merged mismatched epsilon", name)
			}
			// Same mechanism, different domain.
			diffDom, err := core.NewOracle(name, core.PrivacyParams{Epsilon: 1.5, Domain: 32}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.Merge(diffDom); err == nil {
				t.Errorf("%s: merged mismatched domain", name)
			}
			if dst.Collected() != 0 {
				t.Errorf("%s: failed merges changed state", name)
			}
		})
	}
}

// TestSnapshotIsIndependent checks that a snapshot is a deep copy: the
// original keeps collecting without disturbing the snapshot's state.
func TestSnapshotIsIndependent(t *testing.T) {
	for _, name := range core.Mechanisms() {
		name := name
		t.Run(name, func(t *testing.T) {
			o, err := core.NewOracle(name, mergeParams(), ldprand.NewSplitMix64(21))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				o.Collect(i % 16)
			}
			snap := o.Snapshot()
			before := snap.EstimateCounts()
			for i := 0; i < 100; i++ {
				o.Collect(i % 16)
			}
			if snap.Collected() != 100 {
				t.Fatalf("snapshot collected %d after original advanced", snap.Collected())
			}
			after := snap.EstimateCounts()
			for v := range before {
				if before[v] != after[v] {
					t.Fatalf("value %d: snapshot estimate moved %v -> %v", v, before[v], after[v])
				}
			}
			if o.Collected() != 200 {
				t.Fatalf("original collected %d", o.Collected())
			}
		})
	}
}

// TestBinaryRRMerge covers the named Warner wrapper, which is not in
// the core registry but must still satisfy the merge law.
func TestBinaryRRMerge(t *testing.T) {
	a := freq.NewBinaryRR(1, ldprand.NewSplitMix64(31))
	b := freq.NewBinaryRR(1, ldprand.NewSplitMix64(32))
	all := freq.NewBinaryRR(1, ldprand.NewSplitMix64(33))
	// Feed identical report streams by replaying privatized outputs.
	for i := 0; i < 500; i++ {
		r := a.Privatize(i % 2)
		a.Aggregate(r)
		all.Aggregate(r)
	}
	for i := 0; i < 500; i++ {
		r := b.Privatize(i % 2)
		b.Aggregate(r)
		all.Aggregate(r)
	}
	merged := freq.NewBinaryRR(1, nil)
	if err := merged.Merge(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if merged.Collected() != all.Collected() {
		t.Fatalf("collected %d want %d", merged.Collected(), all.Collected())
	}
	got, want := merged.EstimateCounts(), all.EstimateCounts()
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("merged %v want %v", got, want)
	}
	// The wrapper must not merge with a bare GRR even at d=2.
	if err := merged.Merge(freq.NewGRR(1, 2, nil)); err == nil {
		t.Error("BinaryRR merged a bare GRR")
	}
}
