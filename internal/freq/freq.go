// Package freq implements the family of locally differentially private
// frequency oracles that the tutorial is organized around (§1.1–§1.2):
// Warner's randomized response, generalized randomized response (direct
// encoding), the unary encodings (SUE, OUE), histogram encodings (SHE,
// THE), local hashing (BLH, OLH) and Hadamard randomized response.
//
// Every mechanism satisfies ε-LDP: for any two inputs v, v' and any
// report r, Pr[r|v] <= e^ε · Pr[r|v']. Every estimator is unbiased, and
// each mechanism exposes its analytic estimator variance so experiments
// can compare empirical against theoretical error, which is exactly the
// comparison Wang et al. (USENIX Security 2017) tabulate.
//
// A mechanism is used either through its concrete client/server halves
// (Privatize / Aggregate, for distributed collection) or through the
// Oracle interface, which runs both halves in-process for simulations.
package freq

import (
	"fmt"
	"math"

	"repro/internal/ldprand"
)

// Oracle is a complete frequency-estimation protocol over the integer
// domain [0, Domain()). Implementations are not safe for concurrent use;
// run one oracle per goroutine or shard and merge counts.
type Oracle interface {
	// Name identifies the mechanism (e.g. "OLH").
	Name() string
	// Epsilon returns the privacy budget the oracle was built with.
	Epsilon() float64
	// Domain returns the size d of the input domain.
	Domain() int
	// Collect runs the client-side protocol on value v and folds the
	// resulting report into the aggregate. It panics if v is outside
	// [0, Domain()): feeding garbage to the encoder is a caller bug.
	Collect(v int)
	// Collected returns the number of reports aggregated so far.
	Collected() int
	// EstimateCounts returns unbiased estimates of the count of every
	// domain value among the collected reports.
	EstimateCounts() []float64
	// TheoreticalVariance returns the variance of a single count
	// estimate after n reports, in the low-frequency approximation
	// (f→0) the literature uses for comparisons.
	TheoreticalVariance(n int) float64
	// ReportBits returns the (approximate) size of one report in bits,
	// the communication cost axis of the deployed systems.
	ReportBits() int
	// Reset discards all aggregated reports.
	Reset()
	// Merge folds other's aggregate state (its accumulated reports)
	// into the receiver. The two oracles must be the same mechanism
	// with identical parameters; anything else is an error. Every
	// accumulator in this package is linear — a count vector or a sum
	// vector — so Merge(a, b) is exact: the merged oracle estimates as
	// if it had aggregated every report itself. This is the
	// mergeability property that makes sharded aggregation sound.
	Merge(other Oracle) error
	// Snapshot returns an independent deep copy of the oracle's
	// aggregate state, safe to Merge or estimate from while the
	// original keeps collecting. The copy shares the randomness
	// source, so use snapshots for reads and merging, not for
	// concurrent privatization.
	Snapshot() Oracle
	// MarshalState serializes the oracle's aggregate state (the
	// accumulated tallies plus the parameters that debias them) as
	// JSON. Every accumulator in this package is a count or float64
	// sum vector, and Go's JSON encoding of float64 round-trips
	// exactly, so Marshal → Unmarshal reproduces the estimates
	// bit for bit — the property the checkpoint/restore cycle of a
	// collection server depends on.
	MarshalState() ([]byte, error)
	// UnmarshalState replaces the oracle's aggregate state with a
	// previously marshalled one. The state must come from the same
	// mechanism with identical parameters (anything else is an
	// error and leaves the receiver unchanged): the parameters are
	// serialized alongside the tallies precisely so a restore onto
	// a differently-configured oracle cannot silently debias with
	// the wrong constants.
	UnmarshalState(data []byte) error
}

// mergeTypeError reports an attempt to merge across mechanisms.
func mergeTypeError(dst, src Oracle) error {
	return fmt.Errorf("freq: cannot merge %s (%T) into %s (%T)", src.Name(), src, dst.Name(), dst)
}

// mergeParamError reports a same-mechanism merge with incompatible
// parameters.
func mergeParamError(name string) error {
	return fmt.Errorf("freq: %s merge parameter mismatch", name)
}

// stateDecodeError reports unparseable serialized state.
func stateDecodeError(name string, err error) error {
	return fmt.Errorf("freq: %s state: %w", name, err)
}

// stateParamError reports an attempt to restore state onto an oracle
// with different parameters (or a different mechanism entirely).
func stateParamError(name string) error {
	return fmt.Errorf("freq: %s state parameter mismatch", name)
}

// stateShapeError reports serialized state whose tallies are
// malformed: wrong vector length or a negative report count.
func stateShapeError(name string) error {
	return fmt.Errorf("freq: %s state has malformed tallies", name)
}

// checkStateVersion rejects state blobs tagged with a format revision
// this build does not know. Version 0 is the current (untagged)
// format — the tag is omitted on marshal so existing snapshots stay
// bit-identical — and any other value means the blob was written by a
// future revision and must not be reinterpreted field-by-field.
func checkStateVersion(name string, v int) error {
	if v != 0 {
		return fmt.Errorf("freq: %s state: unsupported state version %d", name, v)
	}
	return nil
}

// checkStateShape validates the parts every mechanism state shares.
func checkStateShape(name string, n, gotLen, wantLen int) error {
	if n < 0 || gotLen != wantLen {
		return stateShapeError(name)
	}
	return nil
}

// checkDomain validates a client input.
func checkDomain(v, d int) {
	if v < 0 || v >= d {
		panic(fmt.Sprintf("freq: value %d outside domain [0,%d)", v, d))
	}
}

// checkParams validates common constructor parameters.
func checkParams(epsilon float64, d int) {
	if epsilon <= 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		panic(fmt.Sprintf("freq: epsilon must be positive and finite, got %v", epsilon))
	}
	if d < 2 {
		panic(fmt.Sprintf("freq: domain must have at least 2 values, got %d", d))
	}
}

// defaultSource returns src, or a fresh CSPRNG-backed source when nil.
// Production clients should leave src nil; tests inject deterministic
// sources.
func defaultSource(src ldprand.Source) ldprand.Source {
	if src == nil {
		return ldprand.NewCrypto()
	}
	return src
}

// Config carries the parameters shared by all oracle constructors, so
// experiment code can build any mechanism uniformly.
type Config struct {
	Epsilon float64        // privacy budget per report
	Domain  int            // input domain size d
	Source  ldprand.Source // randomness; nil means crypto/rand
}

// Builder constructs an Oracle from a Config.
type Builder func(Config) Oracle

// Mechanisms returns the canonical mechanism set compared in E2/E3, in
// presentation order.
func Mechanisms() []struct {
	Name  string
	Build Builder
} {
	return []struct {
		Name  string
		Build Builder
	}{
		{"GRR", func(c Config) Oracle { return NewGRR(c.Epsilon, c.Domain, c.Source) }},
		{"SUE", func(c Config) Oracle { return NewSUE(c.Epsilon, c.Domain, c.Source) }},
		{"OUE", func(c Config) Oracle { return NewOUE(c.Epsilon, c.Domain, c.Source) }},
		{"SHE", func(c Config) Oracle { return NewSHE(c.Epsilon, c.Domain, c.Source) }},
		{"THE", func(c Config) Oracle { return NewTHE(c.Epsilon, c.Domain, c.Source) }},
		{"BLH", func(c Config) Oracle { return NewBLH(c.Epsilon, c.Domain, c.Source) }},
		{"OLH", func(c Config) Oracle { return NewOLH(c.Epsilon, c.Domain, c.Source) }},
		{"HRR", func(c Config) Oracle { return NewHRR(c.Epsilon, c.Domain, c.Source) }},
		{"SS", func(c Config) Oracle { return NewSS(c.Epsilon, c.Domain, c.Source) }},
	}
}

// EstimateFrequencies normalizes estimated counts by n into frequency
// estimates (which may be slightly negative or above 1 due to noise).
func EstimateFrequencies(counts []float64, n int) []float64 {
	out := make([]float64, len(counts))
	if n == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = c / float64(n)
	}
	return out
}

// ClampToSimplex projects frequency estimates onto [0,1] and rescales to
// sum to 1, a standard post-processing step (post-processing preserves
// DP).
func ClampToSimplex(freqs []float64) []float64 {
	out := make([]float64, len(freqs))
	// Pre-scale by the largest positive entry so the normalizing sum
	// cannot overflow even for wildly out-of-range inputs.
	var maxPos float64
	for _, f := range freqs {
		if f > maxPos {
			maxPos = f
		}
	}
	if maxPos == 0 {
		maxPos = 1
	}
	var sum float64
	for i, f := range freqs {
		if f > 0 {
			out[i] = f / maxPos
			sum += out[i]
		}
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
