// Package itemset implements frequency estimation over set-valued
// data in the style of LDPMiner (Qin et al., CCS 2016, reference [19]
// of the tutorial): each user holds a *set* of items (apps installed,
// emojis typed, pages visited) rather than a single value.
//
// The core primitive is padding-and-sampling: the user pads or
// truncates their set to a fixed public length L, samples one element
// uniformly, and reports it through a single-item frequency oracle
// with the full budget. Scaling estimates by L recovers unbiased item
// counts for users with |set| <= L, at variance L² times the
// single-item case — the price of set-valued inputs.
//
// FindTopK runs the two-phase LDPMiner flow: half the users locate a
// candidate set with padding-and-sampling over the full domain, and
// the other half re-estimates only the candidates, whose much smaller
// domain makes the second phase far more accurate.
package itemset

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/freq"
	"repro/internal/ldprand"
)

// Params configures padding-and-sampling collection.
type Params struct {
	Epsilon float64 // per-user budget (one report per user)
	Domain  int     // item universe size
	PadLen  int     // public padding length L
}

// Validate checks parameter ranges.
func (p Params) Validate() error {
	switch {
	case p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0):
		return fmt.Errorf("itemset: epsilon must be positive and finite")
	case p.Domain < 2:
		return fmt.Errorf("itemset: domain must be at least 2, got %d", p.Domain)
	case p.PadLen < 1:
		return fmt.Errorf("itemset: PadLen must be at least 1, got %d", p.PadLen)
	}
	return nil
}

// Collector estimates item counts from padded-and-sampled reports. The
// padding element is a dedicated ⊥ value outside the item domain, so
// its reports only add background noise that the oracle debiases away.
type Collector struct {
	params Params
	oracle freq.Oracle
	src    ldprand.Source
}

// NewCollector returns a set-valued collector using OLH over the
// domain plus the padding symbol. A nil source selects crypto/rand.
func NewCollector(params Params, src ldprand.Source) (*Collector, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	// Domain + 1: the extra value is the padding symbol ⊥.
	return &Collector{
		params: params,
		oracle: freq.NewOLH(params.Epsilon, params.Domain+1, src),
		src:    src,
	}, nil
}

// Collect privatizes one user's item set. Sets larger than PadLen are
// truncated by uniform sampling (the standard protocol); empty sets
// report the padding symbol.
func (c *Collector) Collect(items []int) error {
	for _, it := range items {
		if it < 0 || it >= c.params.Domain {
			return fmt.Errorf("itemset: item %d outside domain [0,%d)", it, c.params.Domain)
		}
	}
	pad := c.params.Domain // the ⊥ symbol
	L := c.params.PadLen
	var report int
	switch {
	case len(items) == 0:
		report = pad
	case len(items) >= L:
		// Sample uniformly from the (conceptually truncated) set.
		report = items[ldprand.Intn(c.src, len(items))]
	default:
		// Pad with ⊥ to length L, then sample: the real items are
		// chosen with probability |set|/L in total.
		slot := ldprand.Intn(c.src, L)
		if slot < len(items) {
			report = items[slot]
		} else {
			report = pad
		}
	}
	c.oracle.Collect(report)
	return nil
}

// Collected returns the number of users reported.
func (c *Collector) Collected() int { return c.oracle.Collected() }

// EstimateCounts returns estimated holder counts per item: the
// sampled-frequency estimates scaled by PadLen. Estimates are unbiased
// for users whose sets fit in PadLen; truncated users are undercounted
// by their overflow, the documented bias of the protocol.
func (c *Collector) EstimateCounts() []float64 {
	raw := c.oracle.EstimateCounts()
	out := make([]float64, c.params.Domain)
	for i := range out {
		out[i] = raw[i] * float64(c.params.PadLen)
	}
	return out
}

// TheoreticalVariance returns the variance of one item-count estimate
// after n users: PadLen² times the underlying oracle's variance.
func (c *Collector) TheoreticalVariance(n int) float64 {
	L := float64(c.params.PadLen)
	return L * L * c.oracle.TheoreticalVariance(n)
}

// Hit is one frequent item with its estimated holder count.
type Hit struct {
	Item  int
	Count float64
}

// FindTopK runs the two-phase LDPMiner flow over the users' sets and
// returns the k most frequent items with refined count estimates.
func FindTopK(params Params, k int, sets [][]int, src ldprand.Source) ([]Hit, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("itemset: k must be positive, got %d", k)
	}
	if src == nil {
		src = ldprand.NewCrypto()
	}
	n := len(sets)
	if n < 4 {
		return nil, fmt.Errorf("itemset: need at least 4 users, got %d", n)
	}
	order := ldprand.Perm(src, n)
	half := n / 2

	// Phase 1: locate candidates over the full domain.
	phase1, err := NewCollector(params, src)
	if err != nil {
		return nil, err
	}
	for _, idx := range order[:half] {
		if err := phase1.Collect(sets[idx]); err != nil {
			return nil, err
		}
	}
	counts := phase1.EstimateCounts()
	idxs := make([]int, len(counts))
	for i := range idxs {
		idxs[i] = i
	}
	sort.SliceStable(idxs, func(a, b int) bool { return counts[idxs[a]] > counts[idxs[b]] })
	budget := 2 * k
	if budget > params.Domain {
		budget = params.Domain
	}
	candidates := append([]int(nil), idxs[:budget]...)
	sort.Ints(candidates)
	candIndex := make(map[int]int, len(candidates))
	for i, item := range candidates {
		candIndex[item] = i
	}

	// Phase 2: padding-and-sampling restricted to the candidate set.
	// Each user's set is intersected with the candidates first.
	restricted := Params{Epsilon: params.Epsilon, Domain: len(candidates), PadLen: params.PadLen}
	if restricted.Domain < 2 {
		restricted.Domain = 2 // degenerate single-candidate case
	}
	phase2, err := NewCollector(restricted, src)
	if err != nil {
		return nil, err
	}
	for _, idx := range order[half:] {
		var kept []int
		for _, it := range sets[idx] {
			if ci, ok := candIndex[it]; ok {
				kept = append(kept, ci)
			}
		}
		if err := phase2.Collect(kept); err != nil {
			return nil, err
		}
	}
	est := phase2.EstimateCounts()
	scale := float64(n) / float64(n-half)
	hits := make([]Hit, 0, len(candidates))
	for ci, item := range candidates {
		if ci >= len(est) {
			break
		}
		if est[ci] <= 0 {
			continue
		}
		hits = append(hits, Hit{Item: item, Count: est[ci] * scale})
	}
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].Count > hits[b].Count })
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits, nil
}
