package itemset

import (
	"math"
	"testing"

	"repro/internal/ldprand"
)

func TestParamsValidate(t *testing.T) {
	good := Params{Epsilon: 1, Domain: 100, PadLen: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Epsilon: 0, Domain: 100, PadLen: 4},
		{Epsilon: 1, Domain: 1, PadLen: 4},
		{Epsilon: 1, Domain: 100, PadLen: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// synthSets builds n user sets over [0,domain) where heavy items have
// known holder counts.
func synthSets(src ldprand.Source, domain, n int) ([][]int, map[int]int) {
	heavy := []int{3, 47, 91}
	holderProb := []float64{0.6, 0.4, 0.25}
	truth := make(map[int]int)
	sets := make([][]int, n)
	for i := range sets {
		var s []int
		for h, item := range heavy {
			if ldprand.Bernoulli(src, holderProb[h]) {
				s = append(s, item)
				truth[item]++
			}
		}
		// One random filler item.
		s = append(s, ldprand.Intn(src, domain))
		sets[i] = s
	}
	return sets, truth
}

func TestCollectorUnbiasedForHeavyItems(t *testing.T) {
	const domain, n = 128, 60000
	src := ldprand.NewSplitMix64(1)
	sets, truth := synthSets(src, domain, n)
	c, err := NewCollector(Params{Epsilon: 2, Domain: domain, PadLen: 4}, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sets {
		if err := c.Collect(s); err != nil {
			t.Fatal(err)
		}
	}
	if c.Collected() != n {
		t.Fatalf("collected %d", c.Collected())
	}
	est := c.EstimateCounts()
	tol := 4*math.Sqrt(c.TheoreticalVariance(n)) + 0.03*float64(n)
	for item, want := range truth {
		if math.Abs(est[item]-float64(want)) > tol {
			t.Errorf("item %d: estimate %.0f truth %d (tol %.0f)", item, est[item], want, tol)
		}
	}
}

func TestCollectRejectsOutOfDomain(t *testing.T) {
	c, _ := NewCollector(Params{Epsilon: 1, Domain: 8, PadLen: 2}, ldprand.NewSplitMix64(2))
	if err := c.Collect([]int{8}); err == nil {
		t.Error("out-of-domain item accepted")
	}
	if err := c.Collect([]int{-1}); err == nil {
		t.Error("negative item accepted")
	}
}

func TestEmptyAndOversizeSets(t *testing.T) {
	c, _ := NewCollector(Params{Epsilon: 1, Domain: 8, PadLen: 2}, ldprand.NewSplitMix64(3))
	if err := c.Collect(nil); err != nil {
		t.Fatalf("empty set rejected: %v", err)
	}
	if err := c.Collect([]int{0, 1, 2, 3, 4}); err != nil {
		t.Fatalf("oversize set rejected: %v", err)
	}
	if c.Collected() != 2 {
		t.Fatalf("collected %d", c.Collected())
	}
}

func TestSamplingProbabilityMatchesPadding(t *testing.T) {
	// A user with one item and PadLen=4 must report the item about 1/4
	// of the time and ⊥ otherwise. Observe through the oracle's inputs
	// by instrumenting with a tiny domain and exact counting over many
	// users at epsilon high enough that reports are nearly truthful.
	const n = 40000
	src := ldprand.NewSplitMix64(4)
	c, _ := NewCollector(Params{Epsilon: 8, Domain: 2, PadLen: 4}, src)
	for i := 0; i < n; i++ {
		if err := c.Collect([]int{0}); err != nil {
			t.Fatal(err)
		}
	}
	est := c.EstimateCounts() // scaled by PadLen already
	if math.Abs(est[0]-n) > 0.05*n {
		t.Errorf("single-item estimate %.0f want about %d", est[0], n)
	}
}

func TestFindTopK(t *testing.T) {
	const domain, n = 128, 80000
	src := ldprand.NewSplitMix64(5)
	sets, truth := synthSets(src, domain, n)
	hits, err := FindTopK(Params{Epsilon: 2, Domain: domain, PadLen: 4}, 3, sets, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	// Item 3 (60% of users) must be the top hit.
	if hits[0].Item != 3 {
		t.Errorf("top item %d want 3 (hits %v)", hits[0].Item, hits)
	}
	if math.Abs(hits[0].Count-float64(truth[3])) > 0.35*float64(truth[3]) {
		t.Errorf("top count %.0f truth %d", hits[0].Count, truth[3])
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Count > hits[i-1].Count {
			t.Fatal("hits not sorted")
		}
	}
}

func TestFindTopKValidation(t *testing.T) {
	p := Params{Epsilon: 1, Domain: 16, PadLen: 2}
	if _, err := FindTopK(p, 0, [][]int{{1}, {2}, {3}, {4}}, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := FindTopK(p, 2, [][]int{{1}}, nil); err == nil {
		t.Error("too few users accepted")
	}
	if _, err := FindTopK(Params{Epsilon: 0, Domain: 16, PadLen: 2}, 2, [][]int{{1}, {2}, {3}, {4}}, nil); err == nil {
		t.Error("bad params accepted")
	}
}

func TestVarianceGrowsWithPadLen(t *testing.T) {
	small, _ := NewCollector(Params{Epsilon: 1, Domain: 16, PadLen: 2}, ldprand.NewSplitMix64(6))
	large, _ := NewCollector(Params{Epsilon: 1, Domain: 16, PadLen: 8}, ldprand.NewSplitMix64(7))
	if large.TheoreticalVariance(1000) <= small.TheoreticalVariance(1000) {
		t.Error("variance should grow with PadLen")
	}
	ratio := large.TheoreticalVariance(1000) / small.TheoreticalVariance(1000)
	if math.Abs(ratio-16) > 1e-9 { // (8/2)² = 16
		t.Errorf("variance ratio %v want 16", ratio)
	}
}
