package sketch

import (
	"bytes"
	"fmt"
	"testing"
)

// TestCountMinStateRoundTrip pins bit-identical checkpoint restore:
// marshal → fresh sketch → unmarshal reproduces every estimate.
func TestCountMinStateRoundTrip(t *testing.T) {
	c := NewCountMin(4, 32, 7)
	for i := 0; i < 500; i++ {
		c.Add([]byte(fmt.Sprintf("item-%d", i%20)), 1+float64(i%3))
	}
	blob, err := c.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	back := NewCountMin(4, 32, 7)
	if err := back.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	if back.Total() != c.Total() {
		t.Fatalf("total %v want %v", back.Total(), c.Total())
	}
	for i := 0; i < 20; i++ {
		item := []byte(fmt.Sprintf("item-%d", i))
		if back.Estimate(item) != c.Estimate(item) {
			t.Fatalf("%s: min estimate drifted", item)
		}
		if back.EstimateMean(item) != c.EstimateMean(item) {
			t.Fatalf("%s: mean estimate drifted", item)
		}
	}

	// Parameter mismatches are refused; the receiver is unchanged.
	for _, other := range []*CountMin{
		NewCountMin(3, 32, 7), NewCountMin(4, 16, 7), NewCountMin(4, 32, 8),
	} {
		if err := other.UnmarshalState(blob); err == nil {
			t.Fatal("state restored onto mismatched parameters")
		}
	}
	if err := back.UnmarshalState([]byte(`{"k":4,"m":32,"seed":7,"rows":[1],"total":1}`)); err == nil {
		t.Fatal("short rows accepted")
	}
	if err := back.UnmarshalState([]byte(`garbage`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestCountMinSnapshotAndReset pins snapshot independence and Reset.
func TestCountMinSnapshotAndReset(t *testing.T) {
	c := NewCountMin(3, 16, 1)
	c.Add([]byte("x"), 5)
	snap := c.Snapshot()
	c.Add([]byte("x"), 5)
	if snap.Estimate([]byte("x")) != 5 {
		t.Fatalf("snapshot sees later writes: %v", snap.Estimate([]byte("x")))
	}
	c.Reset()
	if c.Total() != 0 || c.Estimate([]byte("x")) != 0 {
		t.Fatal("reset left counters behind")
	}
}

// TestCountSketchStateRoundTrip mirrors the count-min round trip for
// the signed sketch.
func TestCountSketchStateRoundTrip(t *testing.T) {
	c := NewCountSketch(5, 32, 9)
	for i := 0; i < 500; i++ {
		c.Add([]byte(fmt.Sprintf("item-%d", i%20)), 1)
	}
	blob, err := c.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	back := NewCountSketch(5, 32, 9)
	if err := back.UnmarshalState(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		item := []byte(fmt.Sprintf("item-%d", i))
		if back.Estimate(item) != c.Estimate(item) {
			t.Fatalf("%s: estimate drifted", item)
		}
	}
	if err := NewCountSketch(5, 32, 10).UnmarshalState(blob); err == nil {
		t.Fatal("state restored onto mismatched seed")
	}
	snap := c.Snapshot()
	c.Reset()
	if c.Estimate([]byte("item-0")) != 0 {
		t.Fatal("reset left counters behind")
	}
	if snap.Estimate([]byte("item-0")) == 0 {
		t.Fatal("snapshot shares state with the original")
	}
}

// TestStateRejectsUnknownVersion pins the version gate on both
// sketches: the current format omits the tag, v=0 restores, any other
// tag is refused.
func TestStateRejectsUnknownVersion(t *testing.T) {
	cm := NewCountMin(4, 32, 7)
	cm.Add([]byte("item"), 3)
	cs := NewCountSketch(4, 32, 7)
	cs.Add([]byte("item"), 3)
	for _, tc := range []struct {
		name      string
		marshal   func() ([]byte, error)
		unmarshal func([]byte) error
	}{
		{"count-min", cm.MarshalState, NewCountMin(4, 32, 7).UnmarshalState},
		{"count-sketch", cs.MarshalState, NewCountSketch(4, 32, 7).UnmarshalState},
	} {
		t.Run(tc.name, func(t *testing.T) {
			state, err := tc.marshal()
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Contains(state, []byte(`"v":`)) {
				t.Fatalf("current format must omit the version tag: %s", state)
			}
			if err := tc.unmarshal(append([]byte(`{"v":2,`), state[1:]...)); err == nil {
				t.Fatal("restore accepted a version-2 state blob")
			}
			if err := tc.unmarshal(append([]byte(`{"v":0,`), state[1:]...)); err != nil {
				t.Fatalf("restore rejected an explicit v=0 tag: %v", err)
			}
		})
	}
}
