// State serialization for the sketch substrates, so private sketch
// aggregators built on them (internal/task/cmstask) can checkpoint and
// restore exactly. Counters are float64 and Go's JSON float64 encoding
// round-trips exactly, so Marshal → Unmarshal reproduces estimates bit
// for bit.
package sketch

import (
	"encoding/json"
	"fmt"
	"math"
)

// Seed returns the shared hash seed the sketch was built with.
func (c *CountMin) Seed() uint64 { return c.seed }

// Reset zeroes every counter and the population total.
func (c *CountMin) Reset() {
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] = 0
		}
	}
	c.total = 0
}

// Snapshot returns an independent deep copy of the sketch.
func (c *CountMin) Snapshot() *CountMin {
	cp := NewCountMin(c.k, c.m, c.seed)
	for i := range c.rows {
		copy(cp.rows[i], c.rows[i])
	}
	cp.total = c.total
	return cp
}

// countMinState is the serialized form of a CountMin sketch.
type countMinState struct {
	V     int       `json:"v,omitempty"` // 0 = current format; others refused
	K     int       `json:"k"`
	M     int       `json:"m"`
	Seed  uint64    `json:"seed"`
	Rows  []float64 `json:"rows"` // k*m counters, row-major
	Total float64   `json:"total"`
}

// MarshalState serializes the sketch (parameters and counters) as JSON.
func (c *CountMin) MarshalState() ([]byte, error) {
	flat := make([]float64, 0, c.k*c.m)
	for _, row := range c.rows {
		flat = append(flat, row...)
	}
	return json.Marshal(countMinState{K: c.k, M: c.m, Seed: c.seed, Rows: flat, Total: c.total})
}

// UnmarshalState replaces the counters with a marshalled state. The
// state must come from a sketch with identical parameters — restoring
// onto different hash functions would silently misattribute every
// counter — and malformed states leave the receiver unchanged.
func (c *CountMin) UnmarshalState(data []byte) error {
	var st countMinState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("sketch: count-min state: %w", err)
	}
	return c.applyState(st)
}

// applyState validates a decoded state (shared by the JSON and binary
// codecs) and installs it.
func (c *CountMin) applyState(st countMinState) error {
	if st.V != 0 {
		return fmt.Errorf("sketch: count-min state: unsupported state version %d", st.V)
	}
	if st.K != c.k || st.M != c.m || st.Seed != c.seed {
		return fmt.Errorf("sketch: count-min state parameter mismatch")
	}
	if len(st.Rows) != c.k*c.m || !finite(st.Total) {
		return fmt.Errorf("sketch: count-min state has malformed counters")
	}
	for _, v := range st.Rows {
		if !finite(v) {
			return fmt.Errorf("sketch: count-min state has malformed counters")
		}
	}
	for i := range c.rows {
		copy(c.rows[i], st.Rows[i*c.m:(i+1)*c.m])
	}
	c.total = st.Total
	return nil
}

// Seed returns the shared hash seed the sketch was built with.
func (c *CountSketch) Seed() uint64 { return c.seed }

// Reset zeroes every counter.
func (c *CountSketch) Reset() {
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] = 0
		}
	}
}

// Snapshot returns an independent deep copy of the sketch.
func (c *CountSketch) Snapshot() *CountSketch {
	cp := NewCountSketch(c.k, c.m, c.seed)
	for i := range c.rows {
		copy(cp.rows[i], c.rows[i])
	}
	return cp
}

// countSketchState is the serialized form of a CountSketch.
type countSketchState struct {
	V    int       `json:"v,omitempty"` // 0 = current format; others refused
	K    int       `json:"k"`
	M    int       `json:"m"`
	Seed uint64    `json:"seed"`
	Rows []float64 `json:"rows"` // k*m counters, row-major
}

// MarshalState serializes the sketch (parameters and counters) as JSON.
func (c *CountSketch) MarshalState() ([]byte, error) {
	flat := make([]float64, 0, c.k*c.m)
	for _, row := range c.rows {
		flat = append(flat, row...)
	}
	return json.Marshal(countSketchState{K: c.k, M: c.m, Seed: c.seed, Rows: flat})
}

// UnmarshalState replaces the counters with a marshalled state; the
// parameters must match and malformed states leave c unchanged.
func (c *CountSketch) UnmarshalState(data []byte) error {
	var st countSketchState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("sketch: count sketch state: %w", err)
	}
	return c.applyState(st)
}

// applyState validates a decoded state (shared by the JSON and binary
// codecs) and installs it.
func (c *CountSketch) applyState(st countSketchState) error {
	if st.V != 0 {
		return fmt.Errorf("sketch: count sketch state: unsupported state version %d", st.V)
	}
	if st.K != c.k || st.M != c.m || st.Seed != c.seed {
		return fmt.Errorf("sketch: count sketch state parameter mismatch")
	}
	if len(st.Rows) != c.k*c.m {
		return fmt.Errorf("sketch: count sketch state has malformed counters")
	}
	for _, v := range st.Rows {
		if !finite(v) {
			return fmt.Errorf("sketch: count sketch state has malformed counters")
		}
	}
	for i := range c.rows {
		copy(c.rows[i], st.Rows[i*c.m:(i+1)*c.m])
	}
	return nil
}

// finite reports whether v is a usable counter value.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
