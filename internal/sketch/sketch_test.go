package sketch

import (
	"fmt"
	"math"
	"testing"
)

func item(i int) []byte { return []byte(fmt.Sprintf("item-%d", i)) }

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm := NewCountMin(4, 64, 1)
	truth := map[int]float64{}
	for i := 0; i < 200; i++ {
		id := i % 30
		cm.Add(item(id), 1)
		truth[id]++
	}
	for id, want := range truth {
		if got := cm.Estimate(item(id)); got < want {
			t.Fatalf("count-min underestimated item %d: %v < %v", id, got, want)
		}
	}
}

func TestCountMinExactWhenSparse(t *testing.T) {
	// With far more counters than items, estimates are exact w.h.p.
	cm := NewCountMin(4, 4096, 2)
	for i := 0; i < 10; i++ {
		cm.Add(item(i), float64(i+1))
	}
	for i := 0; i < 10; i++ {
		if got, want := cm.Estimate(item(i)), float64(i+1); got != want {
			t.Fatalf("sparse estimate item %d: %v want %v", i, got, want)
		}
	}
}

func TestCountMeanDebiasing(t *testing.T) {
	// The count-mean estimator subtracts the collision background; on a
	// skewed stream its error for a heavy item should be small relative
	// to the stream size.
	cm := NewCountMin(8, 128, 3)
	const heavy = 5000.0
	cm.Add(item(0), heavy)
	for i := 1; i <= 1000; i++ {
		cm.Add(item(i), 1)
	}
	got := cm.EstimateMean(item(0))
	if math.Abs(got-heavy) > 0.05*cm.Total() {
		t.Fatalf("count-mean estimate %v want about %v", got, heavy)
	}
}

func TestCountMinMergeMatchesUnion(t *testing.T) {
	a := NewCountMin(3, 32, 9)
	b := NewCountMin(3, 32, 9)
	for i := 0; i < 50; i++ {
		a.Add(item(i%7), 1)
		b.Add(item(i%5), 2)
	}
	union := NewCountMin(3, 32, 9)
	for i := 0; i < 50; i++ {
		union.Add(item(i%7), 1)
		union.Add(item(i%5), 2)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if a.Estimate(item(i)) != union.Estimate(item(i)) {
			t.Fatalf("merged estimate differs from union for item %d", i)
		}
	}
	if a.Total() != union.Total() {
		t.Fatalf("merged total %v want %v", a.Total(), union.Total())
	}
}

func TestCountMinMergeRejectsIncompatible(t *testing.T) {
	a := NewCountMin(3, 32, 1)
	cases := []*CountMin{
		NewCountMin(4, 32, 1),
		NewCountMin(3, 64, 1),
		NewCountMin(3, 32, 2),
	}
	for i, b := range cases {
		if err := a.Merge(b); err == nil {
			t.Errorf("case %d: incompatible merge accepted", i)
		}
	}
}

func TestCountSketchUnbiasedOnHeavyItem(t *testing.T) {
	cs := NewCountSketch(5, 256, 4)
	const heavy = 10000.0
	cs.Add(item(0), heavy)
	for i := 1; i <= 500; i++ {
		cs.Add(item(i), 1)
	}
	got := cs.Estimate(item(0))
	if math.Abs(got-heavy) > 0.02*heavy {
		t.Fatalf("count sketch estimate %v want about %v", got, heavy)
	}
}

func TestCountSketchSignsBalanced(t *testing.T) {
	cs := NewCountSketch(1, 8, 7)
	plus := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if cs.Sign(0, item(i)) > 0 {
			plus++
		}
	}
	frac := float64(plus) / n
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("sign fraction %v want about 0.5", frac)
	}
}

func TestCountSketchMerge(t *testing.T) {
	a := NewCountSketch(3, 64, 5)
	b := NewCountSketch(3, 64, 5)
	a.Add(item(1), 10)
	b.Add(item(1), 5)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Estimate(item(1)); math.Abs(got-15) > 1e-9 {
		t.Fatalf("merged estimate %v want 15", got)
	}
	if err := a.Merge(NewCountSketch(2, 64, 5)); err == nil {
		t.Error("incompatible merge accepted")
	}
}

func TestAddToCellAndTotal(t *testing.T) {
	cm := NewCountMin(2, 8, 1)
	cm.AddToCell(0, 3, 2.5)
	cm.AddTotal(1)
	if cm.Row(0)[3] != 2.5 {
		t.Fatalf("cell not updated: %v", cm.Row(0))
	}
	if cm.Total() != 1 {
		t.Fatalf("total %v want 1", cm.Total())
	}
}

func TestNewPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCountMin(0, 8, 0) },
		func() { NewCountMin(2, 0, 0) },
		func() { NewCountSketch(0, 8, 0) },
		func() { NewCountSketch(2, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkCountMinAdd(b *testing.B) {
	cm := NewCountMin(4, 1024, 1)
	data := item(123)
	for i := 0; i < b.N; i++ {
		cm.Add(data, 1)
	}
}

func BenchmarkCountSketchEstimate(b *testing.B) {
	cs := NewCountSketch(5, 1024, 1)
	for i := 0; i < 1000; i++ {
		cs.Add(item(i), 1)
	}
	data := item(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Estimate(data)
	}
}
