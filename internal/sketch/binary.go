// Binary state codecs for the sketch substrates. The counter matrix
// dominates a sketch snapshot (a realistic Apple-CMS deployment is
// 2¹⁶ × 2¹⁰ float64 cells), so the binary layout writes it as raw
// 8-byte words streamed row by row — no flattened copy on encode, no
// JSON number parsing on restore — under a single length prefix. The
// leading version byte is checked before the payload is read, and
// both codecs feed the same applyState validation.
package sketch

import (
	"fmt"

	"repro/internal/binenc"
)

// binaryStateVersion tags the current binary sketch layouts; it is
// the first payload byte, mirroring the JSON states' "v" field.
const binaryStateVersion = 0

// readBinaryStateVersion consumes and checks the leading version tag.
func readBinaryStateVersion(name string, r *binenc.Reader) error {
	version := int(r.Byte())
	if err := r.Err(); err != nil {
		return fmt.Errorf("sketch: %s state: %w", name, err)
	}
	if version != 0 {
		return fmt.Errorf("sketch: %s state: unsupported state version %d", name, version)
	}
	return nil
}

// MarshalStateBinary serializes the sketch in the binary layout.
func (c *CountMin) MarshalStateBinary() ([]byte, error) {
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(binaryStateVersion)
	w.Varint(int64(c.k))
	w.Varint(int64(c.m))
	w.Uint64(c.seed)
	w.Uvarint(uint64(c.k * c.m))
	for _, row := range c.rows {
		w.RawFloat64s(row)
	}
	w.Float64(c.total)
	return append([]byte(nil), w.Bytes()...), nil
}

// UnmarshalStateBinary restores a binary state blob; parameter
// mismatches and malformed payloads leave the receiver unchanged.
func (c *CountMin) UnmarshalStateBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := readBinaryStateVersion("count-min", r); err != nil {
		return err
	}
	var st countMinState
	st.K = int(r.Varint())
	st.M = int(r.Varint())
	st.Seed = r.Uint64()
	st.Rows = r.Float64s()
	st.Total = r.Float64()
	if err := r.Done(); err != nil {
		return fmt.Errorf("sketch: count-min state: %w", err)
	}
	return c.applyState(st)
}

// MarshalStateBinary serializes the sketch in the binary layout.
func (c *CountSketch) MarshalStateBinary() ([]byte, error) {
	w := binenc.NewWriter()
	defer w.Release()
	w.Byte(binaryStateVersion)
	w.Varint(int64(c.k))
	w.Varint(int64(c.m))
	w.Uint64(c.seed)
	w.Uvarint(uint64(c.k * c.m))
	for _, row := range c.rows {
		w.RawFloat64s(row)
	}
	return append([]byte(nil), w.Bytes()...), nil
}

// UnmarshalStateBinary restores a binary state blob; parameter
// mismatches and malformed payloads leave the receiver unchanged.
func (c *CountSketch) UnmarshalStateBinary(data []byte) error {
	r := binenc.NewReader(data)
	if err := readBinaryStateVersion("count sketch", r); err != nil {
		return err
	}
	var st countSketchState
	st.K = int(r.Varint())
	st.M = int(r.Varint())
	st.Seed = r.Uint64()
	st.Rows = r.Float64s()
	if err := r.Done(); err != nil {
		return fmt.Errorf("sketch: count sketch state: %w", err)
	}
	return c.applyState(st)
}
