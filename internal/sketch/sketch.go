// Package sketch implements the (non-private) sketching substrates that
// Apple's system builds on (§1.2(2)): the count-min sketch and the count
// sketch (count-mean variant). The private client/server protocol lives
// in internal/cms; this package supplies the plain data structures and
// their estimators so they can be tested and benchmarked independently.
package sketch

import (
	"fmt"
	"sort"

	"repro/internal/hashutil"
)

// CountMin is a count-min sketch: k rows of m counters with independent
// seeded hash functions. Point queries return an overestimate
// (min over rows) within εn with high probability.
type CountMin struct {
	k, m  int
	seed  uint64
	rows  [][]float64
	total float64
}

// NewCountMin returns an empty count-min sketch with k rows of m
// counters, hashes derived from seed.
func NewCountMin(k, m int, seed uint64) *CountMin {
	if k <= 0 || m <= 0 {
		panic("sketch: k and m must be positive")
	}
	rows := make([][]float64, k)
	backing := make([]float64, k*m)
	for i := range rows {
		rows[i], backing = backing[:m], backing[m:]
	}
	return &CountMin{k: k, m: m, seed: seed, rows: rows}
}

// K returns the number of rows.
func (c *CountMin) K() int { return c.k }

// M returns the number of counters per row.
func (c *CountMin) M() int { return c.m }

// rowSeed derives the hash seed of row i.
func (c *CountMin) rowSeed(i int) uint64 {
	return c.seed + uint64(i)*0x9e3779b97f4a7c15
}

// Position returns the counter index of item in row i.
func (c *CountMin) Position(i int, item []byte) int {
	return hashutil.HashBytesRange(c.rowSeed(i), item, c.m)
}

// Add increments item's counter in every row by weight.
func (c *CountMin) Add(item []byte, weight float64) {
	for i := 0; i < c.k; i++ {
		c.rows[i][c.Position(i, item)] += weight
	}
	c.total += weight
}

// Estimate returns the count-min point estimate for item: the minimum
// counter across rows.
func (c *CountMin) Estimate(item []byte) float64 {
	est := c.rows[0][c.Position(0, item)]
	for i := 1; i < c.k; i++ {
		if v := c.rows[i][c.Position(i, item)]; v < est {
			est = v
		}
	}
	return est
}

// EstimateMean returns the debiased count-mean estimate used by Apple's
// aggregator: average over rows of (counter − total/m) · m/(m−1). Unlike
// the min estimator it is unbiased under uniform hashing.
func (c *CountMin) EstimateMean(item []byte) float64 {
	if c.m == 1 {
		return c.total
	}
	var sum float64
	for i := 0; i < c.k; i++ {
		sum += c.rows[i][c.Position(i, item)]
	}
	mean := sum / float64(c.k)
	m := float64(c.m)
	return (mean - c.total/m) * m / (m - 1)
}

// Total returns the total weight added.
func (c *CountMin) Total() float64 { return c.total }

// Merge adds other's counters into c. Sketches must share k, m and seed,
// otherwise Merge returns an error: merging incompatible sketches would
// silently produce garbage estimates.
func (c *CountMin) Merge(other *CountMin) error {
	if c.k != other.k || c.m != other.m || c.seed != other.seed {
		return fmt.Errorf("sketch: incompatible count-min (k=%d,m=%d,seed=%d vs k=%d,m=%d,seed=%d)",
			c.k, c.m, c.seed, other.k, other.m, other.seed)
	}
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] += other.rows[i][j]
		}
	}
	c.total += other.total
	return nil
}

// CountSketch is the classic AMS-style count sketch: k rows of m
// counters, each item mapped to one counter per row with a random ±1
// sign. The median-of-rows estimator is unbiased with variance O(F2/m).
type CountSketch struct {
	k, m int
	seed uint64
	rows [][]float64
}

// NewCountSketch returns an empty count sketch with k rows of m counters.
func NewCountSketch(k, m int, seed uint64) *CountSketch {
	if k <= 0 || m <= 0 {
		panic("sketch: k and m must be positive")
	}
	rows := make([][]float64, k)
	backing := make([]float64, k*m)
	for i := range rows {
		rows[i], backing = backing[:m], backing[m:]
	}
	return &CountSketch{k: k, m: m, seed: seed, rows: rows}
}

// K returns the number of rows.
func (c *CountSketch) K() int { return c.k }

// M returns the number of counters per row.
func (c *CountSketch) M() int { return c.m }

func (c *CountSketch) rowSeed(i int) uint64 {
	return c.seed ^ (uint64(i)+1)*0xa0761d6478bd642f
}

// Position returns item's counter index in row i.
func (c *CountSketch) Position(i int, item []byte) int {
	return hashutil.HashBytesRange(c.rowSeed(i), item, c.m)
}

// Sign returns item's ±1 sign in row i.
func (c *CountSketch) Sign(i int, item []byte) float64 {
	if hashutil.Hash64(c.rowSeed(i)^0xdeadbeefcafef00d, item)&1 == 1 {
		return -1
	}
	return 1
}

// Add increments item's signed counter in every row by weight.
func (c *CountSketch) Add(item []byte, weight float64) {
	for i := 0; i < c.k; i++ {
		c.rows[i][c.Position(i, item)] += c.Sign(i, item) * weight
	}
}

// Estimate returns the median-of-rows unbiased estimate for item.
func (c *CountSketch) Estimate(item []byte) float64 {
	ests := make([]float64, c.k)
	for i := 0; i < c.k; i++ {
		ests[i] = c.Sign(i, item) * c.rows[i][c.Position(i, item)]
	}
	sort.Float64s(ests)
	mid := c.k / 2
	if c.k%2 == 1 {
		return ests[mid]
	}
	return (ests[mid-1] + ests[mid]) / 2
}

// Merge adds other's counters into c; parameters must match.
func (c *CountSketch) Merge(other *CountSketch) error {
	if c.k != other.k || c.m != other.m || c.seed != other.seed {
		return fmt.Errorf("sketch: incompatible count sketch")
	}
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] += other.rows[i][j]
		}
	}
	return nil
}

// Row exposes row i's counters for aggregators that fold privatized
// vectors directly into the sketch (Apple CMS server).
func (c *CountMin) Row(i int) []float64 { return c.rows[i] }

// AddToCell adds weight directly to a cell; used by private aggregators
// that debias before insertion.
func (c *CountMin) AddToCell(row, col int, weight float64) {
	c.rows[row][col] += weight
	// Note: callers tracking totals must call AddTotal; direct cell
	// updates do not imply one unit of population weight.
}

// AddTotal adds weight to the population total used by EstimateMean.
func (c *CountMin) AddTotal(weight float64) { c.total += weight }
