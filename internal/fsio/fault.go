package fsio

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
)

// ErrInjected is the base of every error a Fault injects; tests (and
// the serving layer's fault suite) match it with errors.Is.
var ErrInjected = errors.New("fsio: injected fault")

// ErrCrashed is returned by every mutating operation after a crash
// fault has fired: the simulated process is dead, nothing it does
// reaches the disk anymore.
var ErrCrashed = fmt.Errorf("%w: filesystem crashed", ErrInjected)

// Fault wraps an FS and injects a failure at one chosen mutating
// operation. Three modes:
//
//   - FailAt(n): operation n fails once (an ENOSPC-style transient);
//     everything before and after succeeds. The process under test
//     keeps running and must degrade gracefully.
//   - CrashAt(n): operation n and every later mutation fail — the
//     process "died" at that point. The test then restarts over the
//     directory exactly as the crash left it.
//   - CrashTornAt(n): like CrashAt, but when operation n is a file
//     write, the first half of its bytes reach the file before the
//     crash — a torn write, the hardest case for framed formats.
//
// Mutating operations are counted in call order (creates, writes,
// syncs, renames, removes, truncates, mkdirs); reads are never counted
// and never fail, so a post-crash "restart" can always inspect the
// directory. Ops() after a disarmed dry run reports how many fault
// points a scenario has, which is what lets a test sweep all of them.
type Fault struct {
	inner FS

	mu      sync.Mutex
	ops     int
	failAt  int
	crash   bool
	torn    bool
	fired   bool
	crashed bool
}

// NewFault returns a disarmed Fault over inner: all operations pass
// through and are counted.
func NewFault(inner FS) *Fault {
	return &Fault{inner: inner, failAt: -1}
}

// Ops returns how many mutating operations have been observed.
func (f *Fault) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Fired reports whether the armed fault has triggered.
func (f *Fault) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

func (f *Fault) arm(n int, crash, torn bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops, f.failAt, f.crash, f.torn, f.fired, f.crashed = 0, n, crash, torn, false, false
}

// FailAt arms a single transient failure at mutating operation n
// (0-based), resetting the operation counter.
func (f *Fault) FailAt(n int) { f.arm(n, false, false) }

// CrashAt arms a crash at mutating operation n, resetting the
// operation counter: that operation and every later one fail.
func (f *Fault) CrashAt(n int) { f.arm(n, true, false) }

// CrashTornAt arms a crash at mutating operation n that, when the
// operation is a file write, lets half the bytes land first.
func (f *Fault) CrashTornAt(n int) { f.arm(n, true, true) }

// Disarm clears any armed fault and resets the operation counter, so
// the same Fault can run a counting dry run.
func (f *Fault) Disarm() { f.arm(-1, false, false) }

// step counts one mutating operation and decides its fate: nil to
// proceed, an error to inject. The second return is true when the op
// is the armed one and writes should tear.
func (f *Fault) step() (error, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed, false
	}
	n := f.ops
	f.ops++
	if n == f.failAt {
		f.fired = true
		if f.crash {
			f.crashed = true
			return fmt.Errorf("%w (crash at op %d)", ErrInjected, n), f.torn
		}
		return fmt.Errorf("%w (transient fault at op %d)", ErrInjected, n), false
	}
	return nil, false
}

func (f *Fault) MkdirAll(path string, perm fs.FileMode) error {
	if err, _ := f.step(); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Fault) CreateTemp(dir, pattern string) (File, error) {
	if err, _ := f.step(); err != nil {
		return nil, err
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: file}, nil
}

func (f *Fault) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	// Opening for writing can create the file: a mutation. Read-only
	// opens pass through so post-crash inspection always works.
	if flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE) != 0 {
		if err, _ := f.step(); err != nil {
			return nil, err
		}
	}
	file, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: file}, nil
}

func (f *Fault) Rename(oldpath, newpath string) error {
	if err, _ := f.step(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Fault) Remove(path string) error {
	if err, _ := f.step(); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

func (f *Fault) Truncate(path string, size int64) error {
	if err, _ := f.step(); err != nil {
		return err
	}
	return f.inner.Truncate(path, size)
}

func (f *Fault) SyncDir(path string) error {
	if err, _ := f.step(); err != nil {
		return err
	}
	return f.inner.SyncDir(path)
}

func (f *Fault) ReadDir(path string) ([]fs.DirEntry, error) { return f.inner.ReadDir(path) }
func (f *Fault) ReadFile(path string) ([]byte, error)       { return f.inner.ReadFile(path) }
func (f *Fault) Stat(path string) (fs.FileInfo, error)      { return f.inner.Stat(path) }
func (f *Fault) Glob(pattern string) ([]string, error)      { return f.inner.Glob(pattern) }

// faultFile routes a file's writes and syncs through the fault
// counter. Close is deliberately not a fault point — durability
// decisions ride on Sync, and keeping Close infallible roughly halves
// the sweep space without losing a failure mode the formats care
// about.
type faultFile struct {
	f     *Fault
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	err, torn := ff.f.step()
	if err != nil {
		if torn && len(p) > 1 {
			// The torn half still lands in the file — what a real
			// power cut mid-write leaves behind.
			n, _ := ff.inner.Write(p[:len(p)/2]) //ldplint:ok fsiocheck injected torn write; the error is the one being simulated
			return n, err
		}
		return 0, err
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if err, _ := ff.f.step(); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
func (ff *faultFile) Name() string { return ff.inner.Name() }
