package fsio

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestFaultDisarmedPassesThroughAndCounts pins the contract the sweep
// tests build on: a disarmed Fault is transparent, and Ops() after a
// dry run reports the number of fault points a scenario has.
func TestFaultDisarmedPassesThroughAndCounts(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS)

	sub := filepath.Join(dir, "sub")
	if err := f.MkdirAll(sub, 0o755); err != nil { // op 0
		t.Fatal(err)
	}
	file, err := f.OpenFile(filepath.Join(sub, "a"), os.O_CREATE|os.O_WRONLY, 0o644) // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write([]byte("hello")); err != nil { // op 2
		t.Fatal(err)
	}
	if err := file.Sync(); err != nil { // op 3
		t.Fatal(err)
	}
	if err := file.Close(); err != nil { // not a fault point
		t.Fatal(err)
	}
	if err := f.Rename(filepath.Join(sub, "a"), filepath.Join(sub, "b")); err != nil { // op 4
		t.Fatal(err)
	}
	if _, err := f.ReadFile(filepath.Join(sub, "b")); err != nil { // reads don't count
		t.Fatal(err)
	}
	if got := f.Ops(); got != 5 {
		t.Fatalf("Ops() = %d, want 5 (mkdir, open, write, sync, rename)", got)
	}
	if f.Fired() {
		t.Fatal("disarmed fault reported Fired")
	}
}

// TestFaultFailAtIsTransient: the armed operation fails once, and the
// very next mutation succeeds — the ENOSPC-style blip the journal's
// broken/recover path is built around.
func TestFaultFailAtIsTransient(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS)
	f.FailAt(1)

	if err := f.MkdirAll(filepath.Join(dir, "x"), 0o755); err != nil { // op 0
		t.Fatal(err)
	}
	err := f.MkdirAll(filepath.Join(dir, "y"), 0o755) // op 1: injected
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("op 1 error = %v, want ErrInjected", err)
	}
	if !f.Fired() {
		t.Fatal("fault did not report Fired")
	}
	if err := f.MkdirAll(filepath.Join(dir, "z"), 0o755); err != nil { // op 2: back to normal
		t.Fatalf("op after transient fault failed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "y")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("failed MkdirAll still reached the disk")
	}
}

// TestFaultCrashAtKillsEveryLaterMutation: after the crash point, all
// mutations fail with ErrCrashed and nothing reaches the disk, while
// reads keep working so the "restart" can inspect the directory.
func TestFaultCrashAtKillsEveryLaterMutation(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS)
	f.CrashAt(1)

	if err := f.MkdirAll(filepath.Join(dir, "pre"), 0o755); err != nil { // op 0
		t.Fatal(err)
	}
	if err := f.MkdirAll(filepath.Join(dir, "at"), 0o755); !errors.Is(err, ErrInjected) { // op 1
		t.Fatalf("crash op error = %v, want ErrInjected", err)
	}
	for i := 0; i < 3; i++ {
		if err := f.MkdirAll(filepath.Join(dir, "post"), 0o755); !errors.Is(err, ErrCrashed) {
			t.Fatalf("post-crash mutation %d error = %v, want ErrCrashed", i, err)
		}
	}
	// Post-crash mutations are not counted: the sweep's op space is
	// exactly the dry run's.
	if got := f.Ops(); got != 2 {
		t.Fatalf("Ops() = %d, want 2", got)
	}
	if _, err := f.ReadDir(dir); err != nil {
		t.Fatalf("post-crash read failed: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "pre" {
		t.Fatalf("directory after crash = %v, want only \"pre\"", entries)
	}
}

// TestFaultCrashTornWrite: the armed write leaves the first half of
// its bytes in the file — the torn-frame debris the journal replay
// must truncate away.
func TestFaultCrashTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	f := NewFault(OS)
	f.CrashTornAt(1)

	file, err := f.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644) // op 0
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	n, err := file.Write(payload) // op 1: torn
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write error = %v, want ErrInjected", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("torn write reported %d bytes, want %d", n, len(payload)/2)
	}
	file.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234567" {
		t.Fatalf("file after torn write = %q, want first half %q", got, "01234567")
	}
}

// TestFaultRearmResetsCounter: re-arming (or disarming) resets the
// operation counter, so one Fault value can run a dry run and then
// every armed scenario of a sweep.
func TestFaultRearmResetsCounter(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS)
	for i := 0; i < 3; i++ {
		if err := f.MkdirAll(filepath.Join(dir, "a"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	f.FailAt(0)
	if err := f.MkdirAll(filepath.Join(dir, "b"), 0o755); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 0 after re-arm = %v, want ErrInjected", err)
	}
	f.Disarm()
	if got := f.Ops(); got != 0 {
		t.Fatalf("Ops() after Disarm = %d, want 0", got)
	}
}
