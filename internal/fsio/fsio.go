// Package fsio is the filesystem seam under the durability layer: an
// interface over exactly the operations the checkpoint store and the
// write-ahead journal perform (create, write, sync, rename, ...), with
// the real os-backed implementation as the default and a
// fault-injecting implementation (Fault) for crash-consistency tests.
// Production code never notices the seam; tests use it to fail or tear
// any single disk operation and then "restart" over the directory the
// simulated crash left behind.
package fsio

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the writable half of an open file: what a journal append or
// a checkpoint temp-file write needs, nothing more.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	Close() error
	// Name returns the path the file was opened under.
	Name() string
}

// FS is the set of filesystem operations the durability layer
// performs. Every mutation the checkpoint store and journal make goes
// through one of these methods, which is what lets a test
// implementation fail or tear any single step of a checkpoint or an
// append and observe what a restart recovers.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	// CreateTemp creates a new unique temp file in dir (os.CreateTemp
	// semantics: pattern's '*' is replaced by a random string).
	CreateTemp(dir, pattern string) (File, error)
	// OpenFile opens path with the given flags (O_APPEND journals,
	// read-only replays).
	OpenFile(path string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	ReadDir(path string) ([]fs.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	Stat(path string) (fs.FileInfo, error)
	Glob(pattern string) ([]string, error)
	Truncate(path string, size int64) error
	// SyncDir fsyncs a directory, making its latest renames and
	// unlinks durable.
	SyncDir(path string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                   { return os.Remove(path) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }
func (osFS) ReadFile(path string) ([]byte, error)       { return os.ReadFile(path) }
func (osFS) Stat(path string) (fs.FileInfo, error)      { return os.Stat(path) }
func (osFS) Glob(pattern string) ([]string, error)      { return filepath.Glob(pattern) }
func (osFS) Truncate(path string, size int64) error     { return os.Truncate(path, size) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
