package hashutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	data := []byte("www.example.com")
	if Hash64(1, data) != Hash64(1, data) {
		t.Error("same seed/data must hash equal")
	}
	if Hash64(1, data) == Hash64(2, data) {
		t.Error("different seeds should hash differently")
	}
}

func TestHashInt64SeedSeparation(t *testing.T) {
	collisions := 0
	for seed := uint64(0); seed < 100; seed++ {
		if HashInt64(seed, 42) == HashInt64(seed+1, 42) {
			collisions++
		}
	}
	if collisions > 0 {
		t.Errorf("%d adjacent-seed collisions on same item", collisions)
	}
}

func TestRangeBoundsProperty(t *testing.T) {
	f := func(h uint64, mRaw uint16) bool {
		m := int(mRaw%1024) + 1
		v := Range(h, m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashIntRangeUniformity(t *testing.T) {
	const m = 16
	const n = 100000
	counts := make([]int, m)
	for i := 0; i < n; i++ {
		counts[HashIntRange(12345, i, m)]++
	}
	want := float64(n) / m
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.08*want {
			t.Errorf("bucket %d: %d, want about %.0f", b, c, want)
		}
	}
}

func TestHashBytesRangeDeterministic(t *testing.T) {
	for _, m := range []int{2, 7, 100} {
		a := HashBytesRange(9, []byte("item"), m)
		b := HashBytesRange(9, []byte("item"), m)
		if a != b {
			t.Fatalf("non-deterministic hash for m=%d", m)
		}
		if a < 0 || a >= m {
			t.Fatalf("out of range: %d for m=%d", a, m)
		}
	}
}

func TestPairwiseRangeProperty(t *testing.T) {
	f := func(r1, r2, x uint64, mRaw uint8) bool {
		m := int(mRaw%64) + 2
		pw := NewPairwise(r1, r2, m)
		v := pw.Hash(x)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairwiseDeterministic(t *testing.T) {
	pw := NewPairwise(111, 222, 10)
	for x := uint64(0); x < 100; x++ {
		if pw.Hash(x) != pw.Hash(x) {
			t.Fatal("pairwise hash not deterministic")
		}
	}
}

func TestPairwiseCollisionRate(t *testing.T) {
	// For a pairwise-independent family into [m], Pr[h(x)=h(y)] is about
	// 1/m for x != y. Estimate over many function draws.
	const m = 8
	const trials = 20000
	collisions := 0
	for i := 0; i < trials; i++ {
		pw := NewPairwise(uint64(i)*2654435761+1, uint64(i)*40503+7, m)
		if pw.Hash(12345) == pw.Hash(67890) {
			collisions++
		}
	}
	rate := float64(collisions) / trials
	if math.Abs(rate-1.0/m) > 0.02 {
		t.Errorf("pairwise collision rate %v, want about %v", rate, 1.0/m)
	}
}

func TestPairwiseUniformSingle(t *testing.T) {
	// Marginal of a pairwise family is uniform: fix x, vary the function.
	const m = 5
	const trials = 50000
	counts := make([]int, m)
	for i := 0; i < trials; i++ {
		pw := NewPairwise(uint64(i)*0x9e3779b97f4a7c15+3, uint64(i)*0xbf58476d1ce4e5b9+11, m)
		counts[pw.Hash(777)]++
	}
	want := float64(trials) / m
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: %d, want about %.0f", b, c, want)
		}
	}
}

func TestModMulAddSmallCases(t *testing.T) {
	// (a*x + b) mod p cross-checked against big-number-free arithmetic
	// for values small enough to avoid overflow in the direct formula.
	cases := []struct{ a, x, b uint64 }{
		{0, 0, 0}, {1, 1, 1}, {2, 3, 4}, {1 << 20, 1 << 20, 99},
		{MersennePrime61 - 1, 2, 5},
	}
	for _, c := range cases {
		got := modMulAdd(c.a, c.x, c.b)
		// Direct computation with 128-bit decomposition.
		hi, lo := mul128(c.a, c.x)
		want := (lo%MersennePrime61 + (hi%MersennePrime61)*((1<<63)%MersennePrime61)%MersennePrime61*2%MersennePrime61 + c.b) % MersennePrime61
		_ = want // the folding identity is awkward to restate; instead check bounds and a known case
		if got >= MersennePrime61 {
			t.Fatalf("modMulAdd(%d,%d,%d) = %d >= p", c.a, c.x, c.b, got)
		}
	}
	if got := modMulAdd(2, 3, 4); got != 10 {
		t.Fatalf("modMulAdd(2,3,4)=%d want 10", got)
	}
	if got := modMulAdd(1, MersennePrime61-1, 1); got != 0 {
		t.Fatalf("modMulAdd(1,p-1,1)=%d want 0", got)
	}
}

func TestMul128KnownValues(t *testing.T) {
	hi, lo := mul128(0xffffffffffffffff, 0xffffffffffffffff)
	if hi != 0xfffffffffffffffe || lo != 1 {
		t.Fatalf("mul128 max*max = (%x,%x)", hi, lo)
	}
	hi, lo = mul128(1<<32, 1<<32)
	if hi != 1 || lo != 0 {
		t.Fatalf("mul128 2^32*2^32 = (%x,%x)", hi, lo)
	}
	hi, lo = mul128(3, 5)
	if hi != 0 || lo != 15 {
		t.Fatalf("mul128 3*5 = (%x,%x)", hi, lo)
	}
}

func BenchmarkHashInt64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HashInt64(uint64(i), i)
	}
}

func BenchmarkHash64Bytes(b *testing.B) {
	data := []byte("https://www.example.com/some/path")
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Hash64(uint64(i), data)
	}
}
