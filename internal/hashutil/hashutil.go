// Package hashutil provides the seeded hash families shared by the
// sketching and local-hashing mechanisms.
//
// Optimized Local Hashing (OLH), Bloom filters and the Apple count-mean
// sketch all assume a publicly known family {H_s} of hash functions from
// an item domain into a small range [m], indexed by a seed that travels
// with each report. The families here are built on FNV-1a mixing with a
// 64-bit finalizer, which empirically behaves as a universal family for
// the ranges used in LDP protocols, plus an exact pairwise-independent
// family over a Mersenne-prime field for code that needs provable
// 2-independence.
package hashutil

import (
	"encoding/binary"
	"hash/fnv"
)

// Hash64 hashes an arbitrary byte string with a 64-bit seed.
func Hash64(seed uint64, data []byte) uint64 {
	h := fnv.New64a()
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], seed)
	h.Write(s[:])
	h.Write(data)
	return mix64(h.Sum64())
}

// HashInt64 hashes an integer item with a 64-bit seed. It avoids
// allocating for the common case of integer-encoded domains.
func HashInt64(seed uint64, item int) uint64 {
	x := uint64(item)
	x ^= seed + 0x9e3779b97f4a7c15
	x = mix64(x)
	x ^= seed<<32 | seed>>32
	return mix64(x)
}

// Range maps a 64-bit hash onto [0, m) without modulo bias, using the
// multiply-shift reduction.
func Range(h uint64, m int) int {
	hi, _ := mul128(h, uint64(m))
	return int(hi)
}

// HashIntRange hashes an integer item into [0, m) under the given seed.
func HashIntRange(seed uint64, item, m int) int {
	return Range(HashInt64(seed, item), m)
}

// HashBytesRange hashes a byte string into [0, m) under the given seed.
func HashBytesRange(seed uint64, data []byte, m int) int {
	return Range(Hash64(seed, data), m)
}

// mix64 is the SplitMix64 finalizer, a strong 64-bit bijective mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + hiPart + t>>32
	return hi, lo
}

// Pairwise is an exactly pairwise-independent hash family
// h(x) = ((a·x + b) mod p) mod m over the Mersenne prime p = 2^61 − 1.
// Draw a fresh (A, B) per function instance; A must be in [1, p), B in
// [0, p).
type Pairwise struct {
	A, B uint64 // coefficients; A in [1,p), B in [0,p)
	M    int    // output range
}

// MersennePrime61 is the field modulus of the Pairwise family.
const MersennePrime61 = (1 << 61) - 1

// NewPairwise derives a pairwise-independent function from two random
// words, reducing them into the valid coefficient ranges, with output
// range m.
func NewPairwise(r1, r2 uint64, m int) Pairwise {
	a := r1%(MersennePrime61-1) + 1 // [1, p)
	b := r2 % MersennePrime61       // [0, p)
	return Pairwise{A: a, B: b, M: m}
}

// Hash evaluates the function at x.
func (pw Pairwise) Hash(x uint64) int {
	v := modMulAdd(pw.A, x%MersennePrime61, pw.B)
	return int(v % uint64(pw.M))
}

// modMulAdd computes (a*x + b) mod (2^61 - 1) without overflow, using the
// Mersenne reduction (hi<<3 | lo-part folding).
func modMulAdd(a, x, b uint64) uint64 {
	hi, lo := mul128(a, x)
	// 2^64 ≡ 2^3 (mod 2^61-1), so fold: value = hi*2^64 + lo.
	res := (lo & MersennePrime61) + (lo >> 61) + (hi<<3)&MersennePrime61 + hi>>58
	res += b
	for res >= MersennePrime61 {
		res -= MersennePrime61
	}
	return res
}
