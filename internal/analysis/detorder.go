package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetOrder guards the monoid property the scale-out plan rests on:
// Merge, Snapshot, MarshalState, Advance and Frontier must be
// bit-deterministic functions of the aggregate state, so that any
// merge order across shards and any checkpoint/restore cycle
// reproduces identical bytes. Two things silently break that:
//
//   - ranging over a map (Go randomizes iteration order per run) on a
//     path that mutates state or feeds serialized output, and
//   - consulting ambient nondeterminism: time.Now or the global
//     math/rand source (all sampling in this codebase goes through an
//     injected ldprand.Source precisely to keep these paths pure).
//
// The analyzer walks the same-package static call graph rooted at
// every method with one of those five names and flags, anywhere in
// it: a `range` over a map with no later sort call in the same
// function (collect-then-sort is the sanctioned pattern), any
// time.Now call, and any package-level math/rand or math/rand/v2
// call. Interface calls are opaque, so cross-task dispatch is checked
// in the implementing package — where the adapter lives.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "forbid unsorted map iteration, time.Now and global math/rand in Merge/Snapshot/MarshalState/Advance/Frontier call graphs",
	Run:  runDetOrder,
}

// detRoots are the method names whose call graphs must be
// deterministic: the merge/serialize/round-boundary surface of
// task.Aggregator and the freq/mean/sketch substrates beneath it.
var detRoots = map[string]bool{
	"Merge":        true,
	"Snapshot":     true,
	"MarshalState": true,
	"Advance":      true,
	"Frontier":     true,
}

func runDetOrder(pass *Pass) error {
	decls := funcDecls(pass)

	// Seed the worklist with the deterministic-surface methods and
	// close it over same-package static calls.
	inScope := make(map[*types.Func]bool)
	var queue []*types.Func
	for fn, decl := range decls {
		if decl.Recv != nil && detRoots[fn.Name()] {
			inScope[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := localCallee(pass, decls, call); callee != nil && !inScope[callee] {
				inScope[callee] = true
				queue = append(queue, callee)
			}
			return true
		})
	}

	for fn := range inScope {
		checkDeterminism(pass, decls[fn])
	}
	return nil
}

// checkDeterminism scans one in-scope function for nondeterminism
// sources.
func checkDeterminism(pass *Pass, decl *ast.FuncDecl) {
	sortCalls := sortCallPositions(pass, decl)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if !rangesOverMap(pass, n) {
				return true
			}
			if sortedAfter(sortCalls, n.End()) {
				return true // collect-then-sort: order laundered before use
			}
			pass.Reportf(n.Pos(),
				"map iteration order is randomized; on the %s path it must be sorted before it feeds state or serialized output",
				decl.Name.Name)
		case *ast.CallExpr:
			pkg, name := calleePkgPath(pass.Info, n)
			switch {
			case pkg == "time" && name == "Now":
				pass.Reportf(n.Pos(),
					"time.Now on the %s path makes merges non-reproducible; thread an explicit timestamp through the caller",
					decl.Name.Name)
			case pkg == "math/rand" || pkg == "math/rand/v2":
				pass.Reportf(n.Pos(),
					"global %s.%s on the %s path breaks bit-identical merges; draw from an injected ldprand.Source",
					pkg, name, decl.Name.Name)
			}
		}
		return true
	})
}

// rangesOverMap reports whether the range statement iterates a map.
func rangesOverMap(pass *Pass, r *ast.RangeStmt) bool {
	tv, ok := pass.Info.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// sortCallPositions collects the positions of sort/slices ordering
// calls in the function, the marker that a collected map's order is
// re-established before use.
func sortCallPositions(pass *Pass, decl *ast.FuncDecl) []token.Pos {
	var out []token.Pos
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, _ := calleePkgPath(pass.Info, call); pkg == "sort" || pkg == "slices" {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

func sortedAfter(sorts []token.Pos, end token.Pos) bool {
	for _, p := range sorts {
		if p > end {
			return true
		}
	}
	return false
}
