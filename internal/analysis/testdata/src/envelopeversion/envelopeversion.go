// Package envelopeversion is the ldplint envelopeversion fixture:
// UnmarshalState implementations with and without a version gate, the
// delegation shapes the analyzer follows, and the waiver escape
// hatch.
package envelopeversion

import (
	"encoding/json"
	"fmt"
)

type state struct {
	V int `json:"v,omitempty"`
	N int `json:"n"`
}

type guarded struct{ n int }

// UnmarshalState carries the canonical guard.
func (g *guarded) UnmarshalState(data []byte) error {
	var st state
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if st.V != 0 {
		return fmt.Errorf("unsupported state version %d", st.V)
	}
	g.n = st.N
	return nil
}

type unguarded struct{ n int }

// UnmarshalState trusts whatever version wrote the blob.
func (u *unguarded) UnmarshalState(data []byte) error { // want `UnmarshalState accepts any state version`
	var st state
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	u.n = st.N
	return nil
}

type delegating struct{ n int }

// UnmarshalState defers to a same-package helper whose switch gates
// the version; the analyzer follows the hop.
func (d *delegating) UnmarshalState(data []byte) error { return d.decode(data) }

func (d *delegating) decode(data []byte) error {
	var st state
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	switch st.V {
	case 0:
	default:
		return fmt.Errorf("unsupported state version %d", st.V)
	}
	d.n = st.N
	return nil
}

type inner interface {
	UnmarshalState([]byte) error
}

type wrapper struct{ in inner }

// UnmarshalState delegates through an interface, the task-adapter
// shape: the format owner enforces the guard in its own package.
func (w *wrapper) UnmarshalState(data []byte) error { return w.in.UnmarshalState(data) }

type binGuarded struct{ n int }

// UnmarshalStateBinary reads its version byte into a local named
// "version" and compares before the payload — the binary-codec shape.
func (g *binGuarded) UnmarshalStateBinary(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("empty state")
	}
	version := int(data[0])
	if version != 0 {
		return fmt.Errorf("unsupported state version %d", version)
	}
	g.n = len(data) - 1
	return nil
}

type binUnguarded struct{ n int }

// UnmarshalStateBinary trusts whatever layout revision wrote the blob.
func (u *binUnguarded) UnmarshalStateBinary(data []byte) error { // want `UnmarshalStateBinary accepts any state version`
	u.n = len(data)
	return nil
}

type binInner interface {
	UnmarshalStateBinary([]byte) error
}

type binWrapper struct{ in binInner }

// UnmarshalStateBinary delegates through an interface, the adapter
// shape: the format owner enforces the guard in its own package.
func (w *binWrapper) UnmarshalStateBinary(data []byte) error {
	return w.in.UnmarshalStateBinary(data)
}

type passthrough struct{ raw []byte }

// UnmarshalState keeps no structured state, so there is no tag to
// gate on; the waiver records why.
func (p *passthrough) UnmarshalState(data []byte) error { //ldplint:ok envelopeversion raw passthrough keeps no structured state
	p.raw = append(p.raw[:0], data...)
	return nil
}
