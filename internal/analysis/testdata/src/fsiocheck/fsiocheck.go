// Package fsiocheck is the ldplint fsiocheck fixture: each way of
// losing a mutating fsio error, beside the checked shapes and the
// annotation escape hatch.
package fsiocheck

import "repro/internal/fsio"

// drop never even receives the error.
func drop(fs fsio.FS, path string) {
	fs.Remove(path) // want `error from fsio Remove discarded`
}

// blank receives the error and throws it away.
func blank(fs fsio.FS, path string) {
	_ = fs.Remove(path) // want `error from fsio Remove assigned to _`
}

// blankMulti discards the error position of a multi-valued seam call.
func blankMulti(fs fsio.FS, dir string) fsio.File {
	f, _ := fs.CreateTemp(dir, "x-*") // want `error from fsio CreateTemp assigned to _`
	return f
}

// deferred loses the error at function exit.
func deferred(f fsio.File) {
	defer f.Close() // want `deferred fsio Close loses its error`
}

// spawned loses the error in another goroutine.
func spawned(f fsio.File) {
	go f.Sync() // want `fsio Sync in a goroutine loses its error`
}

// checked is the expected shape: the error propagates.
func checked(fs fsio.FS, path string) error {
	return fs.Remove(path)
}

// checkedMulti keeps both results.
func checkedMulti(fs fsio.FS, dir string) (fsio.File, error) {
	return fs.CreateTemp(dir, "x-*")
}

// waived discards deliberately, with the annotation carrying the
// justification.
func waived(fs fsio.FS, path string) {
	_ = fs.Remove(path) //ldplint:ok fsiocheck best-effort cleanup exercised by the fixture
}
