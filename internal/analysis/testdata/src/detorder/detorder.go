// Package detorder is the ldplint detorder fixture: an aggregator
// whose deterministic surface (Merge/Snapshot/MarshalState/Advance/
// Frontier) leaks each nondeterminism source once, next to the
// sanctioned collect-then-sort shape and a waived advisory read.
package detorder

import (
	"math/rand"
	"sort"
	"time"
)

type agg struct {
	counts map[string]int
	out    []string
	stamp  int64
}

// Merge appends in map order: different bytes every run.
func (a *agg) Merge(other *agg) {
	for k := range other.counts { // want `map iteration order is randomized`
		a.out = append(a.out, k)
	}
}

// Snapshot collects then sorts — the sanctioned shape.
func (a *agg) Snapshot() []string {
	var keys []string
	for k := range a.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Advance consults the two ambient nondeterminism sources.
func (a *agg) Advance() {
	a.stamp = time.Now().UnixNano() // want `time.Now on the Advance path`
	if rand.Intn(2) == 0 {          // want `global math/rand.Intn on the Advance path`
		a.out = nil
	}
}

// MarshalState reaches an unsorted range through a same-package
// helper; the call-graph closure carries the check into it.
func (a *agg) MarshalState() ([]byte, error) {
	return a.encode()
}

func (a *agg) encode() ([]byte, error) {
	for k := range a.counts { // want `map iteration order is randomized`
		_ = k
	}
	return nil, nil
}

// Frontier carries the waiver shape for a deliberate exception.
func (a *agg) Frontier() int {
	//ldplint:ok detorder advisory read; result does not feed state or output
	for k := range a.counts {
		_ = len(k)
	}
	return 0
}

// offSurface is outside the five-name surface: the same shapes are
// legal here.
func (a *agg) offSurface() {
	for k := range a.counts {
		_ = k
	}
	a.stamp = time.Now().UnixNano()
}
