// Package lockorder is the ldplint lockorder fixture: a miniature of
// the serving core's lock hierarchy with one ordering violation, one
// codec-under-shard-lock violation, the sanctioned shapes beside
// them, and a waived same-rank sweep.
package lockorder

import (
	"encoding/json"
	"sync"

	"repro/internal/task"
)

type coord struct {
	walMu   sync.RWMutex
	phaseMu sync.Mutex
	shards  []*shard
}

// shard matches the analyzer's structural shard signature: a mutex
// beside a task.Aggregator.
type shard struct {
	mu  sync.Mutex
	agg task.Aggregator
}

// badOrder inverts the hierarchy: walMu is the outermost lock.
func (c *coord) badOrder() {
	c.phaseMu.Lock()
	c.walMu.Lock() // want `walMu acquired while phaseMu is held`
	c.walMu.Unlock()
	c.phaseMu.Unlock()
}

// goodOrder takes the same pair in hierarchy order.
func (c *coord) goodOrder() {
	c.walMu.Lock()
	c.phaseMu.Lock()
	c.phaseMu.Unlock()
	c.walMu.Unlock()
}

// decodeUnderLock performs codec work inside a shard critical
// section — the pattern the task.Preparer split exists to prevent.
func (s *shard) decodeUnderLock(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var v map[string]int
	return json.Unmarshal(data, &v) // want `JSON codec or file I/O inside a shard-lock critical section`
}

// decodeOutsideLock is the sanctioned shape: decode first, fold under
// the lock.
func (s *shard) decodeOutsideLock(data []byte) error {
	var v map[string]int
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = v
	return nil
}

// decodeViaHelper reaches the codec through a same-package call; the
// summary fixpoint carries the violation to the lock site.
func (s *shard) decodeViaHelper(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return decode(data) // want `call to decode performs JSON codec work or file I/O inside a shard-lock critical section`
}

func decode(data []byte) error {
	var v map[string]int
	return json.Unmarshal(data, &v)
}

// relay matches the relay tier's lock shape: flushMu brackets whole
// flush cycles, relayMu and outMu are leaves.
type relay struct {
	flushMu sync.Mutex
	relayMu sync.Mutex
	outMu   sync.Mutex
	c       *coord
}

// goodFlushCycle is the sanctioned relay shape: flushMu outermost,
// the cut under walMu, then the leaf locks with the core released.
func (r *relay) goodFlushCycle() {
	r.flushMu.Lock()
	r.c.walMu.Lock()
	r.c.walMu.Unlock()
	r.outMu.Lock()
	r.outMu.Unlock()
	r.relayMu.Lock()
	r.relayMu.Unlock()
	r.flushMu.Unlock()
}

// badFlushUnderWal inverts the bracket: a flush cycle started while a
// collection WAL lock is held deadlocks against the cut.
func (r *relay) badFlushUnderWal() {
	r.c.walMu.Lock()
	r.flushMu.Lock() // want `flushMu acquired while walMu is held`
	r.flushMu.Unlock()
	r.c.walMu.Unlock()
}

// badCoreUnderLeaf acquires a core lock under the relayMu leaf.
func (r *relay) badCoreUnderLeaf() {
	r.relayMu.Lock()
	r.c.phaseMu.Lock() // want `phaseMu acquired while relayMu is held`
	r.c.phaseMu.Unlock()
	r.relayMu.Unlock()
}

// sweepUnwaived holds every shard lock at once; the second loop
// iteration acquires a shard mutex with one already held.
func (c *coord) sweepUnwaived() {
	for _, s := range c.shards {
		s.mu.Lock() // want `shard mu acquired while shard mu is held`
	}
	for _, s := range c.shards {
		s.mu.Unlock()
	}
}

// sweepWaived is the same sweep with the annotation the real round
// advance carries: same-rank, one canonical acquisition order.
func (c *coord) sweepWaived() {
	for _, s := range c.shards {
		s.mu.Lock() //ldplint:ok lockorder all-shard sweep in canonical index order
	}
	for _, s := range c.shards {
		s.mu.Unlock()
	}
}
