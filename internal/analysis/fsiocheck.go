package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FsioCheck enforces the durability layer's ground rule: every error
// from a mutating fsio.File / fsio.FS operation is handled. The
// write-ahead journal's acknowledgement invariant ("ack ⇒ durably
// journaled or checkpointed") is only as strong as the weakest
// ignored Write, Sync, Close or Rename error — a swallowed failure
// turns an acknowledged report into silent data loss at the next
// crash.
//
// Flagged shapes, for calls whose static receiver is the fsio.File or
// fsio.FS seam:
//
//   - the call as a bare statement (error not even received),
//   - the error result assigned to the blank identifier,
//   - the call deferred or spawned in a goroutine (result lost).
//
// Best-effort operations exist (dropping a superseded segment,
// re-syncing a directory after a quarantine rename); they are
// annotated where they happen:
//
//	_ = fs.Remove(path) //ldplint:ok fsiocheck superseded by the durable snapshot
//
// so the diff that introduces a discarded error also carries its
// justification. Calls through other interfaces (*os.File internals
// of the seam itself, HTTP bodies) are out of scope by design: the
// durability layer's contract is that every mutation goes through
// fsio, which the seam's construction enforces.
var FsioCheck = &Analyzer{
	Name: "fsiocheck",
	Doc:  "require every mutating fsio.File/fsio.FS error to be checked or explicitly annotated",
	Run:  runFsioCheck,
}

// fsioMutators are the seam methods whose error must be handled. Read
// operations (ReadFile, ReadDir, Stat, Glob) return values callers
// need anyway; the mutators are where an ignored error loses data.
var fsioMutators = map[string]bool{
	// fsio.File
	"Write": true, "Sync": true, "Close": true,
	// fsio.FS
	"MkdirAll": true, "CreateTemp": true, "OpenFile": true,
	"Rename": true, "Remove": true, "Truncate": true, "SyncDir": true,
}

func runFsioCheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok && isFsioMutation(pass, call) {
					pass.Reportf(call.Pos(), "error from %s discarded; check it or annotate the discard", fsioCallName(call))
				}
			case *ast.DeferStmt:
				if isFsioMutation(pass, s.Call) {
					pass.Reportf(s.Call.Pos(), "deferred %s loses its error; call it explicitly and check, or annotate", fsioCallName(s.Call))
				}
			case *ast.GoStmt:
				if isFsioMutation(pass, s.Call) {
					pass.Reportf(s.Call.Pos(), "%s in a goroutine loses its error; check it or annotate", fsioCallName(s.Call))
				}
			case *ast.AssignStmt:
				checkFsioAssign(pass, s)
			}
			return true
		})
	}
	return nil
}

// checkFsioAssign flags fsio mutations whose error lands in the blank
// identifier. Both shapes are covered: `_ = f.Close()` and the
// multi-value `f, _ := fs.CreateTemp(...)` (the error is the last
// result of every seam method that returns one).
func checkFsioAssign(pass *Pass, s *ast.AssignStmt) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok || !isFsioMutation(pass, call) {
		return
	}
	// The error is the final result; its destination is the final LHS.
	last := s.Lhs[len(s.Lhs)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(call.Pos(), "error from %s assigned to _; check it or annotate the discard", fsioCallName(call))
	}
}

// isFsioMutation reports whether the call is a mutating method on the
// fsio.File or fsio.FS seam, resolved by the receiver's static
// interface type.
func isFsioMutation(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !fsioMutators[sel.Sel.Name] {
		return false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	path, name := namedRecv(s.Recv())
	return strings.HasSuffix(path, "internal/fsio") && (name == "File" || name == "FS")
}

func fsioCallName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return "fsio " + sel.Sel.Name
	}
	return "fsio operation"
}
