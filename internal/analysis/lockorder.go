package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockOrder enforces the mutex hierarchy the serving core's
// crash-safety argument depends on, documented across
// core.Collection, core.ShardedAggregator, core.journal and
// cluster.Relay:
//
//	flushMu < walMu < advanceMu < cacheMu/estMu < phaseMu < shard mutex < dedupMu < outMu < relayMu
//
// Ingestion holds walMu shared around append+fold so a checkpoint
// (walMu exclusive) sees journal-generation boundaries exactly;
// phaseMu excludes shard-walks from a round advance's all-shard
// rewrite; the shard mutexes are innermost so striped ingestion never
// waits on coordination locks. Acquiring these locks in any other
// order is a deadlock or a torn-round read waiting for the right
// interleaving.
//
// The relay tier brackets the core hierarchy: flushMu serializes
// whole flush cycles and is taken before any collection's WAL lock
// (a cycle cuts state via CutDelta, walMu exclusive); outMu guards
// the outbox spool and relayMu the flush-standing counters — both
// are leaves acquired with no core lock held and nothing ranked
// acquired under them.
//
// The analyzer additionally flags JSON encoding/decoding and file I/O
// performed while a shard mutex is held: the task.Preparer split
// exists precisely so parsing and payload decoding run outside the
// locks, and a codec call under a shard lock re-serializes the whole
// ingest path on one stripe.
//
// A lock is ranked by its field name (walMu, advanceMu, cacheMu,
// estMu, phaseMu, dedupMu); a field named "mu" ranks as a shard mutex
// when its struct also carries a task.Aggregator — the signature of a
// lock striping aggregate state. Unranked mutexes (registry, store,
// journal internals) are outside the hierarchy and ignored. The check
// is flow-insensitive across branches that return early and treats
// interface calls as opaque, so it under-approximates; what it does
// report is structural.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "check the walMu/phaseMu/shard-mutex acquisition order and forbid JSON codecs and file I/O inside shard-lock critical sections",
	Run:  runLockOrder,
}

// Lock ranks, outermost first. Gaps leave room for future layers.
const (
	rankFlush   = 5 // relay flush cycle: outermost, held across cut+send
	rankWal     = 10
	rankAdvance = 20
	rankCache   = 30
	rankPhase   = 40
	rankShard   = 50
	rankDedup   = 60
	rankOutbox  = 65 // outbox spool: leaf, file ops only
	rankRelay   = 70 // relay standing counters: strict leaf
)

var lockRanks = map[string]int{
	"flushMu":   rankFlush,
	"walMu":     rankWal,
	"advanceMu": rankAdvance,
	"cacheMu":   rankCache,
	"estMu":     rankCache,
	"phaseMu":   rankPhase,
	"dedupMu":   rankDedup,
	"outMu":     rankOutbox,
	"relayMu":   rankRelay,
}

// heldLock is one ranked lock currently held on the walked path.
type heldLock struct {
	rank int
	name string
}

// lockSummary is what one function does, transitively through
// same-package static calls: which ranked locks it may acquire and
// whether it performs JSON codec work or file I/O.
type lockSummary struct {
	acquires map[int]string // rank -> example lock name
	jsonIO   bool
}

func runLockOrder(pass *Pass) error {
	decls := funcDecls(pass)
	summaries := lockSummaries(pass, decls)
	for _, decl := range decls {
		w := &lockWalker{pass: pass, decls: decls, summaries: summaries}
		w.walkBody(nil, decl.Body)
	}
	return nil
}

// lockSummaries computes each function's transitive acquisition and
// I/O summary by fixpoint over the same-package static call graph.
func lockSummaries(pass *Pass, decls map[*types.Func]*ast.FuncDecl) map[*types.Func]*lockSummary {
	sums := make(map[*types.Func]*lockSummary, len(decls))
	edges := make(map[*types.Func][]*types.Func)
	for fn, decl := range decls {
		s := &lockSummary{acquires: make(map[int]string)}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if rank, name, acquire := lockCall(pass, call); rank > 0 && acquire {
				s.acquires[rank] = name
			}
			if isCodecOrFileIO(pass, call) {
				s.jsonIO = true
			}
			if callee := localCallee(pass, decls, call); callee != nil {
				edges[fn] = append(edges[fn], callee)
			}
			return true
		})
		sums[fn] = s
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range edges {
			s := sums[fn]
			for _, callee := range callees {
				cs := sums[callee]
				if cs == nil {
					continue
				}
				for r, n := range cs.acquires {
					if _, ok := s.acquires[r]; !ok {
						s.acquires[r] = n
						changed = true
					}
				}
				if cs.jsonIO && !s.jsonIO {
					s.jsonIO = true
					changed = true
				}
			}
		}
	}
	return sums
}

// lockCall classifies a call as a ranked Lock/RLock (acquire=true) or
// Unlock/RUnlock (acquire=false); rank 0 means not a ranked lock op.
func lockCall(pass *Pass, call *ast.CallExpr) (rank int, name string, acquire bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return 0, "", false
	}
	// The receiver must be a sync mutex, not any type with a Lock
	// method.
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Obj().Pkg() == nil || s.Obj().Pkg().Path() != "sync" {
		return 0, "", false
	}
	rank, name = lockRank(pass, ast.Unparen(sel.X))
	return rank, name, acquire
}

// lockRank ranks the mutex-valued expression by the hierarchy table.
func lockRank(pass *Pass, x ast.Expr) (int, string) {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		name := x.Sel.Name
		if r, ok := lockRanks[name]; ok {
			return r, name
		}
		if name == "mu" && recvGuardsAggregator(pass, x) {
			return rankShard, "shard mu"
		}
	case *ast.Ident:
		if r, ok := lockRanks[x.Name]; ok {
			return r, x.Name
		}
	}
	return 0, ""
}

// recvGuardsAggregator reports whether the field selection's receiver
// struct also carries a task.Aggregator field — the shape of a shard:
// a mutex striping a slice of aggregate state.
func recvGuardsAggregator(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.Info.Selections[sel]
	if !ok {
		return false
	}
	st, ok := derefStruct(s.Recv())
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isTaskAggregator(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// isTaskAggregator matches the task.Aggregator interface (or a slice
// of values carrying it, the shard-array case).
func isTaskAggregator(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isTaskAggregator(u.Elem())
	case *types.Pointer:
		return isTaskAggregator(u.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Aggregator" && strings.HasSuffix(n.Obj().Pkg().Path(), "internal/task")
}

// osFileFuncs are the package-level os calls that touch the
// filesystem; any of them inside a shard-lock section stalls every
// report hash-routed to that stripe for the I/O's duration.
var osFileFuncs = map[string]bool{
	"Create": true, "CreateTemp": true, "Open": true, "OpenFile": true,
	"ReadFile": true, "WriteFile": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "Mkdir": true, "MkdirAll": true, "Truncate": true,
	"ReadDir": true, "Stat": true,
}

// isCodecOrFileIO reports whether the call is JSON encode/decode work
// or file I/O: encoding/json package functions and method sets, fsio
// seam operations, and os file operations.
func isCodecOrFileIO(pass *Pass, call *ast.CallExpr) bool {
	if pkg, name := calleePkgPath(pass.Info, call); pkg != "" {
		if pkg == "encoding/json" {
			return true
		}
		if pkg == "os" && osFileFuncs[name] {
			return true
		}
	}
	// Method calls on encoding/json codecs, fsio seam values, or
	// *os.File (all dynamic or otherwise, resolved by receiver type).
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	if path, _ := namedRecv(s.Recv()); path == "encoding/json" || path == "os" || strings.HasSuffix(path, "internal/fsio") {
		return true
	}
	return false
}

// namedRecv returns the defining package path and type name of a
// method receiver type, dereferencing one pointer.
func namedRecv(t types.Type) (pkgPath, name string) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", ""
	}
	return n.Obj().Pkg().Path(), n.Obj().Name()
}

// lockWalker walks one function body in statement order, tracking the
// ranked locks held on the path.
type lockWalker struct {
	pass      *Pass
	decls     map[*types.Func]*ast.FuncDecl
	summaries map[*types.Func]*lockSummary
}

// walkBody processes a block and returns the held set at its end.
// Branch bodies are walked on a copy of the held set; a branch that
// cannot fall through (return, panic, continue, break, goto) discards
// its copy, so an early-error unlock does not leak into the main
// path. Loop bodies are walked twice so a second iteration sees locks
// the first left held — the lock-in-a-loop pattern.
func (w *lockWalker) walkBody(held []heldLock, block *ast.BlockStmt) []heldLock {
	if block == nil {
		return held
	}
	return w.walkStmts(held, block.List)
}

func (w *lockWalker) walkStmts(held []heldLock, stmts []ast.Stmt) []heldLock {
	for _, s := range stmts {
		held = w.walkStmt(held, s)
	}
	return held
}

func (w *lockWalker) walkStmt(held []heldLock, stmt ast.Stmt) []heldLock {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return w.walkExpr(held, s.X)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			held = w.walkExpr(held, rhs)
		}
		return held
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			held = w.walkExpr(held, r)
		}
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(held, s.Init)
		}
		held = w.walkExpr(held, s.Cond)
		held = w.mergeBranch(held, w.walkBody(cloneHeld(held), s.Body), s.Body)
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				held = w.mergeBranch(held, w.walkStmts(cloneHeld(held), e.List), e)
			default:
				held = w.walkStmt(held, e)
			}
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(held, s.Init)
		}
		held = w.walkBody(held, s.Body)
		return w.walkBody(held, s.Body) // second pass: locks surviving an iteration
	case *ast.RangeStmt:
		held = w.walkExpr(held, s.X)
		held = w.walkBody(held, s.Body)
		return w.walkBody(held, s.Body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			body = s.Body
		case *ast.TypeSwitchStmt:
			body = s.Body
		case *ast.SelectStmt:
			body = s.Body
		}
		for _, c := range body.List {
			var list []ast.Stmt
			switch c := c.(type) {
			case *ast.CaseClause:
				list = c.Body
			case *ast.CommClause:
				list = c.Body
			}
			end := w.walkStmts(cloneHeld(held), list)
			held = w.mergeBranch(held, end, &ast.BlockStmt{List: list})
		}
		return held
	case *ast.BlockStmt:
		return w.walkStmts(held, s.List)
	case *ast.LabeledStmt:
		return w.walkStmt(held, s.Stmt)
	case *ast.DeferStmt:
		// A deferred Unlock runs at function exit: the lock stays held
		// for the rest of the walk, which is exactly right. A deferred
		// function literal runs with no locks of this path held... at
		// exit the path's locks ARE held, but reporting inside it
		// against the current set would double-count; walk it with the
		// current held set minus nothing is the conservative choice.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkBody(cloneHeld(held), lit.Body)
		}
		return held
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkBody(nil, lit.Body) // new goroutine: fresh lock context
		} else {
			w.walkExpr(nil, s.Call)
		}
		return held
	}
	return held
}

// mergeBranch folds a branch's end state back into the main path:
// kept only when the branch can fall through.
func (w *lockWalker) mergeBranch(held, branchEnd []heldLock, body ast.Node) []heldLock {
	if terminates(body) {
		return held
	}
	return branchEnd
}

// terminates reports whether a block's last statement leaves it
// without falling through.
func terminates(n ast.Node) bool {
	var list []ast.Stmt
	switch n := n.(type) {
	case *ast.BlockStmt:
		list = n.List
	default:
		return false
	}
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// walkExpr processes one expression's calls in evaluation order,
// updating and checking the held set.
func (w *lockWalker) walkExpr(held []heldLock, expr ast.Expr) []heldLock {
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // analyzed when invoked, not where defined
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			held = w.checkCall(held, call)
			return true
		})
	}
	walk(expr)
	return held
}

// checkCall applies one call's effect to the held set and reports
// violations at the call site.
func (w *lockWalker) checkCall(held []heldLock, call *ast.CallExpr) []heldLock {
	if rank, name, acquire := lockCall(w.pass, call); rank > 0 {
		if !acquire {
			return releaseLock(held, rank, name)
		}
		for _, h := range held {
			if h.rank >= rank {
				w.pass.Reportf(call.Pos(),
					"%s acquired while %s is held; the lock order is flushMu < walMu < advanceMu < cacheMu/estMu < phaseMu < shard mu < dedupMu < outMu < relayMu",
					name, h.name)
				break
			}
		}
		return append(held, heldLock{rank: rank, name: name})
	}
	if holdsShard(held) && isCodecOrFileIO(w.pass, call) {
		w.pass.Reportf(call.Pos(),
			"JSON codec or file I/O inside a shard-lock critical section; decode outside the lock (task.Preparer) and fold under it")
	}
	if callee := localCallee(w.pass, w.decls, call); callee != nil {
		if s := w.summaries[callee]; s != nil {
			for rank, name := range s.acquires {
				for _, h := range held {
					if h.rank >= rank {
						w.pass.Reportf(call.Pos(),
							"call to %s acquires %s while %s is held; the lock order is flushMu < walMu < advanceMu < cacheMu/estMu < phaseMu < shard mu < dedupMu < outMu < relayMu",
							callee.Name(), name, h.name)
					}
				}
			}
			if s.jsonIO && holdsShard(held) {
				w.pass.Reportf(call.Pos(),
					"call to %s performs JSON codec work or file I/O inside a shard-lock critical section",
					callee.Name())
			}
		}
	}
	return held
}

func holdsShard(held []heldLock) bool {
	for _, h := range held {
		if h.rank == rankShard {
			return true
		}
	}
	return false
}

// releaseLock removes the most recently acquired lock of the rank.
func releaseLock(held []heldLock, rank int, name string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].rank == rank && held[i].name == name {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

func cloneHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}
