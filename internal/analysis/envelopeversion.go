package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EnvelopeVersion requires every UnmarshalState and
// UnmarshalStateBinary implementation to gate on a state-version tag
// before trusting the payload. The
// checkpoint envelope itself is versioned (v2 → v3 → v4 migrations in
// internal/core), and the aggregator states it wraps carry their own
// tags for the same reason: a state blob written by a future format
// revision must be refused loudly at restore time, not reinterpreted
// field-by-field into a silently corrupt aggregate. The hhtask guard
// is the canonical shape:
//
//	if st.V != 0 && st.V != stateVersionSums {
//		return fmt.Errorf("hhtask: unsupported state version %d", st.V)
//	}
//
// The analyzer accepts any comparison or switch whose operand is
// named "V"/"v" or contains "version", looked for in the method body
// and, depth-limited, through same-package helpers it delegates to
// (freq's unmarshalStateAs pattern). Delegating to another package's
// UnmarshalState/UnmarshalStateBinary also satisfies the check — the
// delegate is analyzed where it is defined. Binary decoders satisfy it
// the same way JSON ones do: read the version byte into a local named
// "version" and compare before touching the payload.
var EnvelopeVersion = &Analyzer{
	Name: "envelopeversion",
	Doc:  "require UnmarshalState and UnmarshalStateBinary implementations to refuse unknown state-version tags",
	Run:  runEnvelopeVersion,
}

// isStateUnmarshal reports whether the method name is one of the
// restore entry points the guard requirement covers.
func isStateUnmarshal(name string) bool {
	return name == "UnmarshalState" || name == "UnmarshalStateBinary"
}

// guardDepth bounds how many same-package delegation hops the guard
// search follows; the repo's deepest real chain (UnmarshalState →
// unmarshalStateAs) is one hop.
const guardDepth = 3

func runEnvelopeVersion(pass *Pass) error {
	decls := funcDecls(pass)
	for fn, decl := range decls {
		if decl.Recv == nil || !isStateUnmarshal(fn.Name()) {
			continue
		}
		if hasVersionGuard(pass, decls, decl, guardDepth) {
			continue
		}
		pass.Reportf(decl.Name.Pos(),
			"%s accepts any state version; compare a version tag (the hhtask `st.V != 0 && st.V != stateVersion...` shape) and refuse unknown ones", fn.Name())
	}
	return nil
}

// hasVersionGuard reports whether the function body contains a
// version-tag comparison, a switch on a version tag, a delegation to
// another package's UnmarshalState, or a same-package call whose body
// (followed to the given depth) contains one.
func hasVersionGuard(pass *Pass, decls map[*types.Func]*ast.FuncDecl, decl *ast.FuncDecl, depth int) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if isComparisonOp(n.Op) && (versionOperand(n.X) || versionOperand(n.Y)) {
				found = true
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && versionOperand(n.Tag) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && isStateUnmarshal(sel.Sel.Name) {
				if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
					// Delegation through an interface (the task
					// adapters wrapping freq.Oracle): the guard lives
					// with the format owner, which is analyzed in its
					// own package's pass.
					found = true
					return false
				}
			}
			callee := staticCallee(pass.Info, n)
			if callee == nil {
				return true
			}
			if callee.Pkg() != pass.Pkg && isStateUnmarshal(callee.Name()) {
				// Cross-package delegation: the delegate enforces its
				// own guard in its own package's ldplint pass.
				found = true
				return false
			}
			if depth > 0 && callee.Pkg() == pass.Pkg {
				if d, ok := decls[callee]; ok && hasVersionGuard(pass, decls, d, depth-1) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isComparisonOp(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

// versionOperand reports whether the expression reads an identifier
// or field whose name marks it as a version tag.
func versionOperand(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return isVersionName(e.Name)
	case *ast.SelectorExpr:
		return isVersionName(e.Sel.Name)
	}
	return false
}

func isVersionName(s string) bool {
	return s == "V" || s == "v" || strings.Contains(strings.ToLower(s), "version")
}
