// Package analyzertest runs one ldplint analyzer over a fixture
// package and checks its diagnostics against expectations written in
// the fixture source, in the style of x/tools' analysistest:
//
//	s.mu.Lock() // want `walMu acquired while phaseMu is held`
//
// Each `want` carries a regexp (Go-quoted, backticks preferred) that
// must match a diagnostic reported on that line; every diagnostic
// must be claimed by a want and every want must be satisfied.
// Fixtures live under testdata/src/<analyzer>/ as ordinary compiling
// packages — `go list -export` resolves them like any other package
// in the module, so they may import the real repro/internal seams
// they exercise, while ./... wildcards (build, test, vet) never
// descend into testdata.
package analyzertest

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe matches one expectation: a `want` keyword in a line comment
// followed by a Go string literal (quoted or backquoted) holding the
// regexp.
var wantRe = regexp.MustCompile("//.*?want\\s+(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// expectation is one want comment awaiting a matching diagnostic.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	met  bool
}

// Run loads the fixture package rooted at dir (relative to the test's
// working directory), applies exactly one analyzer, and reports any
// mismatch between diagnostics and want comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkgs, err := analysis.Load(dir, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", dir, len(pkgs))
	}
	lp := pkgs[0]
	diags, err := analysis.Run([]*analysis.Analyzer{a}, lp.Fset, lp.Files, lp.Pkg, lp.Info)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, lp)
	for _, d := range diags {
		pos := lp.Fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.rx)
		}
	}
}

// collectWants scans the fixture's source files for want comments.
func collectWants(t *testing.T, lp *analysis.LoadedPackage) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range lp.Files {
		name := lp.Fset.Position(f.Package).Filename
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("reading fixture source: %v", err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				pattern, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want literal %s: %v", name, i+1, m[1], err)
				}
				rx, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, pattern, err)
				}
				wants = append(wants, &expectation{file: name, line: i + 1, rx: rx})
			}
		}
	}
	return wants
}

// claim marks the first unmet want on the diagnostic's line whose
// regexp matches, reporting whether one existed.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.met && w.file == file && w.line == line && w.rx.MatchString(msg) {
			w.met = true
			return true
		}
	}
	return false
}
