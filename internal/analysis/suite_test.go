package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analyzertest"
)

// Each fixture package pairs positive cases (every violation shape
// the analyzer knows, marked with want comments), negative cases (the
// sanctioned shapes beside them), and the //ldplint:ok escape hatch.

func TestLockOrder(t *testing.T) {
	analyzertest.Run(t, analysis.LockOrder, "testdata/src/lockorder")
}

func TestDetOrder(t *testing.T) {
	analyzertest.Run(t, analysis.DetOrder, "testdata/src/detorder")
}

func TestFsioCheck(t *testing.T) {
	analyzertest.Run(t, analysis.FsioCheck, "testdata/src/fsiocheck")
}

func TestEnvelopeVersion(t *testing.T) {
	analyzertest.Run(t, analysis.EnvelopeVersion, "testdata/src/envelopeversion")
}
