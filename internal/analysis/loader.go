package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
)

// This file is the suite's package loader: it type-checks targets
// from source while importing dependencies from gc export data, the
// same shape `go vet` hands a vettool via vet.cfg. Keeping both modes
// on one TypeCheck path means a fixture test exercises exactly the
// code the CI gate runs.

// A LoadedPackage is one target package, parsed and type-checked,
// ready for Run.
type LoadedPackage struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// TypeCheck parses the named files and type-checks them as one
// package, resolving imports through lookup, which must return gc
// export data for the (already ImportMap-resolved) package path.
func TypeCheck(fset *token.FileSet, importPath string, filenames []string, lookup func(path string) (io.ReadCloser, error)) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &LoadedPackage{Path: importPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load type-checks every non-dependency package matched by the
// patterns, using `go list -export` both to enumerate targets and to
// locate export data for their imports. dir anchors pattern
// resolution (the module root for ./... sweeps, a testdata directory
// for fixtures).
func Load(dir string, patterns ...string) ([]*LoadedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.Bytes())
	}

	exports := make(map[string]string) // import path → export-data file
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	var loaded []*LoadedPackage
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var filenames []string
		for _, f := range t.GoFiles {
			filenames = append(filenames, t.Dir+string(os.PathSeparator)+f)
		}
		importMap := t.ImportMap
		lookup := func(path string) (io.ReadCloser, error) {
			if resolved, ok := importMap[path]; ok {
				path = resolved
			}
			exp, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(exp)
		}
		lp, err := TypeCheck(token.NewFileSet(), t.ImportPath, filenames, lookup)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.ImportPath, err)
		}
		loaded = append(loaded, lp)
	}
	return loaded, nil
}
