// Package analysis is ldplint's analyzer suite: custom static checks
// that machine-verify the invariants this codebase's correctness rests
// on but which otherwise live only in comments and after-the-fact
// tests. Three invariant families are covered:
//
//   - Concurrency: the walMu → advanceMu → cacheMu/estMu → phaseMu →
//     shard-mutex lock order that keeps checkpoints from seeing torn
//     rounds, and "no JSON codec or file I/O inside a shard-lock
//     critical section" (the reason task.Preparer exists). See
//     lockorder.go.
//   - Determinism: Merge/Snapshot/MarshalState/Advance/Frontier call
//     graphs must not iterate maps unsorted or consult time.Now /
//     global math/rand — the sources of merge non-determinism that
//     would break bit-identical checkpoints across shards. See
//     detorder.go.
//   - Durability: every error from a mutating fsio.File / fsio.FS
//     operation must be checked or carry an explicit annotation
//     (fsiocheck.go), and UnmarshalState implementations must refuse
//     unknown state-version tags (envelopeversion.go).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is built on the standard library
// alone, so the module needs no dependency to run its own gate. The
// cmd/ldplint multichecker drives these analyzers under
// `go vet -vettool` (one type-checked package per invocation, exactly
// the unitchecker contract) and standalone over `go list` patterns.
//
// # Suppressing a finding
//
// A deliberate exception is annotated where it happens:
//
//	_ = f.Close() //ldplint:ok fsiocheck superseded by the rename above
//
// The marker names the analyzer being waived and should carry a
// reason. It may sit on the flagged line or alone on the line above.
// Unannotated findings fail the build, so every waiver is visible in
// the diff that introduces it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// marker is the comment prefix that waives a finding on its line (or
// the line below).
const marker = "//ldplint:ok"

// An Analyzer is one named static check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records one finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzers returns the full ldplint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{LockOrder, DetOrder, FsioCheck, EnvelopeVersion}
}

// Run applies the analyzers to one type-checked package and returns
// the surviving diagnostics sorted by position. Test files are
// skipped — the invariants are production invariants, and test
// doubles legitimately cut corners production code must not — and
// findings waived by an //ldplint:ok annotation are dropped.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var prod []*ast.File
	for _, f := range files {
		if name := fset.Position(f.Package).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		prod = append(prod, f)
	}
	waivers := collectWaivers(fset, prod)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    prod,
			Pkg:      pkg,
			Info:     info,
		}
		pass.report = func(d Diagnostic) {
			if waivers.covers(a.Name, fset.Position(d.Pos)) {
				return
			}
			d.Message = a.Name + ": " + d.Message
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// waiverSet records, per file and line, which analyzers an
// //ldplint:ok comment waives.
type waiverSet map[string]map[int][]string

// collectWaivers scans the files' comments for //ldplint:ok markers.
// The analyzer name is the first word after the marker; the rest of
// the comment is the human reason and is not interpreted.
func collectWaivers(fset *token.FileSet, files []*ast.File) waiverSet {
	ws := make(waiverSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, marker)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := ws[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					ws[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], fields[0])
			}
		}
	}
	return ws
}

// covers reports whether a waiver for the analyzer sits on the
// diagnostic's line or on the line directly above it.
func (ws waiverSet) covers(analyzer string, pos token.Position) bool {
	lines, ok := ws[pos.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}
