package analysis

import (
	"go/ast"
	"go/types"
)

// funcDecls maps each declared function or method in the package to
// its declaration, keyed by the types object so call sites resolve to
// bodies without name mangling.
func funcDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// staticCallee resolves a call expression to the *types.Func it
// invokes, when that is statically known: a plain function call or a
// concrete method call. Interface method calls and calls through
// function values return nil — the analyses treat them as opaque,
// which under-approximates but never false-positives.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			if fn != nil && types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch: body unknown
			}
			return fn
		}
		// Package-qualified call (pkg.F).
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// localCallee resolves a call to a function declared in this package,
// or nil.
func localCallee(pass *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *types.Func {
	fn := staticCallee(pass.Info, call)
	if fn == nil || fn.Pkg() != pass.Pkg {
		return nil
	}
	if _, ok := decls[fn]; !ok {
		return nil
	}
	return fn
}

// calleePkgPath returns the defining package path and name of a
// statically resolved callee, or "", "".
func calleePkgPath(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}
